"""Integrated and two-step circuit optimizers (§2.3, §3.3).

The **integrated optimizer** implements the paper's proposal: generate a
set of candidate logical plans, *virtually place and physically map
every one of them* in the cost space ("this yields exactly one candidate
circuit per plan, with the cost of the circuit representing the current
node and network state"), and select the cheapest candidate circuit.

The **two-step optimizer** is the classic baseline (§2.3): plan
generation runs first with a network-oblivious cost model (minimize
intermediate rates), producing a single plan; service placement then
does the best it can for that plan.  Figure 1's inefficiency is exactly
the gap between the two.

A **random optimizer** provides the floor: random plan, random hosts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.circuit import Circuit
from repro.core.costs import CircuitCost, CostEvaluator, CostSpaceEvaluator
from repro.core.cost_space import CostSpace
from repro.core.physical_mapping import (
    CatalogMapper,
    ExhaustiveMapper,
    MappingResult,
    map_circuit,
)
from repro.core.virtual_placement import VirtualPlacement, relaxation_placement
from repro.query.generator import best_plan, enumerate_all_plans, top_k_plans
from repro.query.model import QuerySpec
from repro.query.plan import LogicalPlan
from repro.query.selectivity import Statistics

__all__ = [
    "CandidateOutcome",
    "OptimizationResult",
    "IntegratedOptimizer",
    "TwoStepOptimizer",
    "RandomOptimizer",
    "pinned_vector_positions",
]

#: Full enumeration is used up to this many producers; beyond it the
#: top-k DP provides the candidate set.
FULL_ENUMERATION_LIMIT = 5


def pinned_vector_positions(
    circuit: Circuit, cost_space: CostSpace
) -> dict[str, np.ndarray]:
    """Vector coordinates of a circuit's pinned services."""
    return {
        sid: cost_space.coordinate(circuit.services[sid].pinned_node).vector_array()
        for sid in circuit.pinned_ids()
    }


@dataclass(frozen=True)
class CandidateOutcome:
    """One fully evaluated candidate circuit."""

    plan: LogicalPlan
    cost: CircuitCost

    @property
    def signature(self) -> str:
        return self.plan.signature()


@dataclass
class OptimizationResult:
    """Outcome of optimizing one query.

    Attributes:
        query_name: the optimized query.
        plan: the winning logical plan.
        circuit: the winning circuit, fully placed.
        cost: the winning circuit's (estimated) cost.
        virtual_placement: the winner's virtual placement.
        mapping: the winner's physical mapping (with error stats).
        candidates: every candidate evaluated, in evaluation order.
        placements_evaluated: how many plan placements were computed —
            the optimizer-work metric of the scalability experiments.
    """

    query_name: str
    plan: LogicalPlan
    circuit: Circuit
    cost: CircuitCost
    virtual_placement: VirtualPlacement
    mapping: MappingResult
    candidates: list[CandidateOutcome] = field(default_factory=list)
    placements_evaluated: int = 0


class _PlacingOptimizerBase:
    """Shared machinery: place+map+price one plan."""

    def __init__(
        self,
        cost_space: CostSpace,
        mapper: ExhaustiveMapper | CatalogMapper | None = None,
        evaluator: CostEvaluator | None = None,
        placement_fn=relaxation_placement,
        load_weight: float = 1.0,
    ):
        self.cost_space = cost_space
        self.mapper = mapper or ExhaustiveMapper(cost_space)
        self.evaluator = evaluator or CostSpaceEvaluator(cost_space)
        self.placement_fn = placement_fn
        self.load_weight = load_weight

    def place_plan(
        self, plan: LogicalPlan, query: QuerySpec, stats: Statistics
    ) -> tuple[Circuit, VirtualPlacement, MappingResult, CircuitCost]:
        """Compile, virtually place, map, and price one plan."""
        circuit = Circuit.from_plan(plan, query, stats)
        pinned = pinned_vector_positions(circuit, self.cost_space)
        placement = self.placement_fn(circuit, pinned)
        mapping = map_circuit(circuit, placement, self.cost_space, self.mapper)
        cost = self.evaluator.evaluate(circuit, load_weight=self.load_weight)
        return circuit, placement, mapping, cost

    def refine_placement(
        self,
        circuit: Circuit,
        placement: VirtualPlacement,
        candidates: int,
    ) -> CircuitCost:
        """Evaluator-guided local search around the mapped placement.

        For each unpinned service, try the ``candidates`` nearest nodes
        to its virtual coordinate (full cost-space distance) and keep a
        reassignment iff the evaluator's total drops.  This lets
        evaluators that know more than the cost space — bandwidth
        constraints, true loads — influence *where* services land, not
        just which plan wins.  With ``candidates=0`` this is a no-op.
        """
        scalar_dims = len(self.cost_space.spec.scalar_dimensions)
        cost = self.evaluator.evaluate(circuit, load_weight=self.load_weight)
        if candidates <= 0:
            return cost
        excluded = getattr(self.mapper, "excluded", set())
        for sid in circuit.unpinned_ids():
            target = np.concatenate(
                [placement.position_of(sid), np.zeros(scalar_dims)]
            )
            distances = self.cost_space.distances_from(target)
            order = np.argsort(distances, kind="stable")
            ranked = [
                int(node) for node in order if int(node) not in excluded
            ][:candidates]
            best_node = circuit.host_of(sid)
            for node in ranked:
                if node == best_node:
                    continue
                circuit.assign(sid, node)
                trial = self.evaluator.evaluate(
                    circuit, load_weight=self.load_weight
                )
                if trial.total < cost.total:
                    cost = trial
                    best_node = node
            circuit.assign(sid, best_node)
        return cost


class IntegratedOptimizer(_PlacingOptimizerBase):
    """Joint plan generation + service placement through the cost space.

    Args:
        cost_space: the shared cost space snapshot.
        mapper: physical-mapping backend (exhaustive by default).
        evaluator: circuit pricing; defaults to cost-space estimates,
            which is what a decentralized deployment would use.
        placement_fn: virtual-placement algorithm (relaxation default).
        max_candidate_plans: cap on candidates from the top-k DP when
            full enumeration is intractable.
        load_weight: weight of the load penalty in the total cost.
    """

    def __init__(
        self,
        cost_space: CostSpace,
        mapper: ExhaustiveMapper | CatalogMapper | None = None,
        evaluator: CostEvaluator | None = None,
        placement_fn=relaxation_placement,
        max_candidate_plans: int = 16,
        load_weight: float = 1.0,
        refinement_candidates: int = 0,
    ):
        super().__init__(cost_space, mapper, evaluator, placement_fn, load_weight)
        if max_candidate_plans < 1:
            raise ValueError("max_candidate_plans must be >= 1")
        if refinement_candidates < 0:
            raise ValueError("refinement_candidates must be >= 0")
        self.max_candidate_plans = max_candidate_plans
        #: when > 0, each candidate circuit's mapping is refined by an
        #: evaluator-guided search over this many nearest nodes per
        #: service (see ``refine_placement``).
        self.refinement_candidates = refinement_candidates

    def candidate_plans(
        self, query: QuerySpec, stats: Statistics
    ) -> list[LogicalPlan]:
        """The candidate set: full enumeration when small, top-k DP else."""
        names = query.producer_names
        if len(names) <= FULL_ENUMERATION_LIMIT:
            return enumerate_all_plans(names)
        return top_k_plans(names, stats, k=self.max_candidate_plans)

    def optimize(self, query: QuerySpec, stats: Statistics) -> OptimizationResult:
        """Full circuit optimization: one placed candidate per plan."""
        plans = self.candidate_plans(query, stats)
        best: tuple | None = None
        candidates: list[CandidateOutcome] = []
        for plan in plans:
            circuit, placement, mapping, cost = self.place_plan(plan, query, stats)
            if self.refinement_candidates:
                cost = self.refine_placement(
                    circuit, placement, self.refinement_candidates
                )
            candidates.append(CandidateOutcome(plan, cost))
            if best is None or cost.total < best[4].total:
                best = (plan, circuit, placement, mapping, cost)
        assert best is not None
        plan, circuit, placement, mapping, cost = best
        return OptimizationResult(
            query_name=query.name,
            plan=plan,
            circuit=circuit,
            cost=cost,
            virtual_placement=placement,
            mapping=mapping,
            candidates=candidates,
            placements_evaluated=len(plans),
        )


class TwoStepOptimizer(_PlacingOptimizerBase):
    """Classic baseline: network-oblivious plan first, placement second.

    Plan generation "without considering node or network state" picks
    the single plan minimizing estimated intermediate rates; placement
    then uses the same cost-space machinery as the integrated optimizer
    (so the comparison isolates the *integration*, not the placement
    quality).
    """

    def optimize(self, query: QuerySpec, stats: Statistics) -> OptimizationResult:
        plan = best_plan(query.producer_names, stats)
        circuit, placement, mapping, cost = self.place_plan(plan, query, stats)
        return OptimizationResult(
            query_name=query.name,
            plan=plan,
            circuit=circuit,
            cost=cost,
            virtual_placement=placement,
            mapping=mapping,
            candidates=[CandidateOutcome(plan, cost)],
            placements_evaluated=1,
        )


class RandomOptimizer(_PlacingOptimizerBase):
    """Floor baseline: random plan, uniformly random hosts."""

    def __init__(
        self,
        cost_space: CostSpace,
        evaluator: CostEvaluator | None = None,
        load_weight: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(
            cost_space, None, evaluator, relaxation_placement, load_weight
        )
        self._rng = random.Random(seed)

    def optimize(self, query: QuerySpec, stats: Statistics) -> OptimizationResult:
        names = query.producer_names
        if len(names) <= FULL_ENUMERATION_LIMIT:
            plans = enumerate_all_plans(names)
        else:
            plans = top_k_plans(names, stats, k=8)
        plan = self._rng.choice(plans)
        circuit = Circuit.from_plan(plan, query, stats)
        for sid in circuit.unpinned_ids():
            circuit.assign(sid, self._rng.randrange(self.cost_space.num_nodes))
        cost = self.evaluator.evaluate(circuit, load_weight=self.load_weight)
        placement = VirtualPlacement({}, 0, True, 0.0)
        return OptimizationResult(
            query_name=query.name,
            plan=plan,
            circuit=circuit,
            cost=cost,
            virtual_placement=placement,
            mapping=MappingResult(),
            candidates=[CandidateOutcome(plan, cost)],
            placements_evaluated=1,
        )
