"""Core: the paper's contribution — cost spaces and integrated optimization.

Public surface of the cost-space approach:

* cost-space construction (:class:`CostSpaceSpec`, :class:`CostSpace`,
  weighting functions),
* circuits and their cost models,
* virtual placement algorithms and physical-mapping backends,
* the integrated, two-step, and random optimizers,
* multi-query optimization with radius pruning,
* dynamic re-optimization (local migration + full re-planning).
"""

from repro.core.bandwidth_costs import BandwidthAwareEvaluator
from repro.core.circuit import Circuit, CircuitLink, Service, effective_statistics
from repro.core.coordinates import CostCoordinate
from repro.core.cost_space import CostSpace, CostSpaceSpec, ScalarDimension
from repro.core.costs import (
    CircuitCost,
    CostEvaluator,
    CostSpaceEvaluator,
    GroundTruthEvaluator,
    consumer_latency,
    network_usage,
)
from repro.core.load_model import (
    KIND_AGGREGATE,
    KIND_FILTER,
    KIND_JOIN,
    KIND_RELAY,
    LoadModel,
)
from repro.core.multi_query import (
    DeployedService,
    MultiQueryOptimizer,
    MultiQueryResult,
)
from repro.core.optimizer import (
    CandidateOutcome,
    IntegratedOptimizer,
    OptimizationResult,
    RandomOptimizer,
    TwoStepOptimizer,
    pinned_vector_positions,
)
from repro.core.physical_mapping import (
    CatalogMapper,
    ExhaustiveMapper,
    MappingResult,
    ServiceMapping,
    build_catalog,
    map_circuit,
)
from repro.core.precomputed import (
    PlanBook,
    PrecomputedPlansOptimizer,
    perturbed_cost_space,
)
from repro.core.registry import CostSpaceRegistry
from repro.core.reoptimizer import Migration, ReoptimizationReport, Reoptimizer
from repro.core.rewriting import (
    RewriteResult,
    colocated_join_pairs,
    decompose_join,
    recompose_colocated_joins,
    reorder_adjacent_joins,
)
from repro.core.virtual_placement import (
    VirtualPlacement,
    centroid_placement,
    exact_spring_equilibrium,
    gradient_descent_placement,
    placement_energy,
    placement_utilization,
    relaxation_placement,
)
from repro.core.weighting import (
    WeightingFunction,
    exponential,
    linear,
    squared,
    threshold,
    zero,
)

__all__ = [
    "BandwidthAwareEvaluator",
    "Circuit",
    "CircuitLink",
    "Service",
    "effective_statistics",
    "CostCoordinate",
    "CostSpace",
    "CostSpaceSpec",
    "ScalarDimension",
    "CircuitCost",
    "CostEvaluator",
    "CostSpaceEvaluator",
    "GroundTruthEvaluator",
    "consumer_latency",
    "network_usage",
    "KIND_AGGREGATE",
    "KIND_FILTER",
    "KIND_JOIN",
    "KIND_RELAY",
    "LoadModel",
    "DeployedService",
    "MultiQueryOptimizer",
    "MultiQueryResult",
    "CandidateOutcome",
    "IntegratedOptimizer",
    "OptimizationResult",
    "RandomOptimizer",
    "TwoStepOptimizer",
    "pinned_vector_positions",
    "CatalogMapper",
    "ExhaustiveMapper",
    "MappingResult",
    "ServiceMapping",
    "build_catalog",
    "map_circuit",
    "PlanBook",
    "PrecomputedPlansOptimizer",
    "perturbed_cost_space",
    "CostSpaceRegistry",
    "Migration",
    "ReoptimizationReport",
    "Reoptimizer",
    "RewriteResult",
    "colocated_join_pairs",
    "decompose_join",
    "recompose_colocated_joins",
    "reorder_adjacent_joins",
    "VirtualPlacement",
    "centroid_placement",
    "exact_spring_equilibrium",
    "gradient_descent_placement",
    "placement_energy",
    "placement_utilization",
    "relaxation_placement",
    "WeightingFunction",
    "exponential",
    "linear",
    "squared",
    "threshold",
    "zero",
]
