"""Circuits: instantiated queries in the SBON (§3).

A *circuit* is the instantiation of a query: pinned services (producers
and consumer, with pre-defined network locations) plus unpinned services
(joins, aggregates) that the optimizer is free to place, connected by
directed links each carrying an estimated stream rate.

``Circuit.from_plan`` compiles a logical plan + query spec into a
circuit; placement is recorded in ``circuit.placement`` and filled in
by the physical-mapping stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.model import QuerySpec
from repro.query.operators import ServiceKind, ServiceSpec, processing_load
from repro.query.plan import JoinNode, LeafNode, LogicalPlan, PlanNode
from repro.query.selectivity import Statistics

__all__ = [
    "ReplicaInfo",
    "Service",
    "CircuitLink",
    "Circuit",
    "effective_statistics",
]


@dataclass(frozen=True)
class ReplicaInfo:
    """Replication metadata carried by key-partitioned replica services.

    A replicated family is the base service split into ``count``
    key-range replicas plus one downstream merge relay.  The *family*
    link rates of the unreplicated original are stored here exactly
    (not divided and re-multiplied, which would drift in float64) so
    the data plane can derive window domains and match probabilities
    bitwise-identically to the unreplicated circuit — the key-partition
    exactness invariant depends on it.

    Attributes:
        base: service id of the original (unreplicated) service.
        index: replica index in ``0..count-1``; ``-1`` marks the merge
            relay that re-interleaves the replicas' outputs.
        count: number of replicas in the family (the split factor k).
        in_rates: the original service's input-link rates, in port
            order — the family rates each replica derives its operator
            parameters from.
        out_rate: the original service's (first) output-link rate.
    """

    base: str
    index: int
    count: int
    in_rates: tuple[float, ...]
    out_rate: float

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("replica count must be >= 1")
        if not -1 <= self.index < self.count:
            raise ValueError("replica index must be -1 (merge) or in [0, count)")

    @property
    def is_merge(self) -> bool:
        return self.index < 0


@dataclass(frozen=True)
class Service:
    """One service instance in a circuit.

    Attributes:
        service_id: unique id within the circuit (e.g. ``"q1/join0"``).
        spec: the service's kind and parameters.
        pinned_node: physical node for pinned services, None if unpinned.
        producers: the set of producer names whose data this service's
            output reflects — the *reuse key* for multi-query
            optimization (two services with equal kind and producer set
            compute the same stream).
        replica: replication metadata when this service is one replica
            (or the merge relay) of a key-partitioned family; None for
            ordinary services.
    """

    service_id: str
    spec: ServiceSpec
    pinned_node: int | None
    producers: frozenset[str]
    replica: ReplicaInfo | None = None

    @property
    def is_pinned(self) -> bool:
        return self.pinned_node is not None

    @property
    def kind(self) -> ServiceKind:
        return self.spec.kind

    def reuse_key(self) -> tuple:
        """Key under which identical services can be merged (§2.2).

        A replica computes only its key slice of the stream, so the key
        carries the replica identity — multi-query reuse must never
        merge a replica with the unreplicated original or a sibling.
        """
        if self.replica is not None:
            return (
                self.spec.kind,
                self.producers,
                self.replica.index,
                self.replica.count,
            )
        return (self.spec.kind, self.producers)


@dataclass(frozen=True)
class CircuitLink:
    """A directed stream link between two services of a circuit."""

    source: str
    target: str
    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("link rate must be non-negative")
        if self.source == self.target:
            raise ValueError("link endpoints must differ")


@dataclass
class Circuit:
    """A query circuit: services, links, and a (partial) placement.

    Attributes:
        name: circuit identifier.
        services: service id -> :class:`Service`.
        links: directed links with rates.
        placement: service id -> physical node; pinned services are
            pre-assigned, unpinned ones appear once mapped.
    """

    name: str
    services: dict[str, Service] = field(default_factory=dict)
    links: list[CircuitLink] = field(default_factory=list)
    placement: dict[str, int] = field(default_factory=dict)

    # Monotone placement-change counter (class default; bumped onto the
    # instance by :meth:`assign`).  Deliberately *not* a dataclass field
    # so equality/init/repr are unaffected — consumers that cache
    # derived placement data (the data plane's arena host column) cheap
    # -check this instead of re-reading the placement dict every tick.
    _placement_version = 0

    # -- construction ------------------------------------------------------

    def add_service(self, service: Service) -> None:
        if service.service_id in self.services:
            raise ValueError(f"duplicate service id {service.service_id}")
        self.services[service.service_id] = service
        if service.is_pinned:
            self.placement[service.service_id] = service.pinned_node

    def add_link(self, source: str, target: str, rate: float) -> None:
        if source not in self.services or target not in self.services:
            raise ValueError("link endpoints must be existing services")
        self.links.append(CircuitLink(source, target, rate))

    @classmethod
    def from_plan(
        cls,
        plan: LogicalPlan,
        query: QuerySpec,
        stats: Statistics,
        name: str | None = None,
    ) -> "Circuit":
        """Compile a logical plan into a circuit for ``query``.

        Producers become pinned RELAY sources at their producer nodes;
        each join node becomes an unpinned JOIN service; an optional
        aggregate (``query.aggregate_factor``) is appended before the
        pinned consumer sink.  Link rates come from the product-form
        rate model over *effective* (post-filter) statistics.
        """
        if plan.producers != frozenset(query.producer_names):
            raise ValueError("plan covers different producers than the query")
        effective = effective_statistics(query, stats)
        circuit = cls(name=name or query.name)

        # Pinned producer sources.
        for producer in query.producers:
            circuit.add_service(
                Service(
                    service_id=f"{circuit.name}/src:{producer.name}",
                    spec=ServiceSpec.relay(),
                    pinned_node=producer.node,
                    producers=frozenset((producer.name,)),
                )
            )

        counter = 0

        def build(node: PlanNode) -> tuple[str, float]:
            """Recursively add services; return (service_id, output_rate)."""
            nonlocal counter
            if isinstance(node, LeafNode):
                sid = f"{circuit.name}/src:{node.producer}"
                return sid, effective.rate(node.producer)
            assert isinstance(node, JoinNode)
            left_id, left_rate = build(node.left)
            right_id, right_rate = build(node.right)
            sid = f"{circuit.name}/join{counter}"
            counter += 1
            circuit.add_service(
                Service(
                    service_id=sid,
                    spec=ServiceSpec.join(),
                    pinned_node=None,
                    producers=node.producers,
                )
            )
            circuit.add_link(left_id, sid, left_rate)
            circuit.add_link(right_id, sid, right_rate)
            return sid, node.output_rate(effective)

        tail_id, tail_rate = build(plan.root)

        if query.aggregate_factor is not None:
            agg_id = f"{circuit.name}/agg"
            circuit.add_service(
                Service(
                    service_id=agg_id,
                    spec=ServiceSpec.aggregate(),
                    pinned_node=None,
                    producers=plan.producers,
                )
            )
            circuit.add_link(tail_id, agg_id, tail_rate)
            tail_id, tail_rate = agg_id, tail_rate * query.aggregate_factor

        sink_id = f"{circuit.name}/sink:{query.consumer.name}"
        circuit.add_service(
            Service(
                service_id=sink_id,
                spec=ServiceSpec.relay(),
                pinned_node=query.consumer.node,
                producers=plan.producers,
            )
        )
        circuit.add_link(tail_id, sink_id, tail_rate)
        return circuit

    # -- structure queries -------------------------------------------------

    def pinned_ids(self) -> list[str]:
        """Ids of pinned services, in insertion order."""
        return [sid for sid, s in self.services.items() if s.is_pinned]

    def unpinned_ids(self) -> list[str]:
        """Ids of unpinned services, in insertion order."""
        return [sid for sid, s in self.services.items() if not s.is_pinned]

    def neighbors(self, service_id: str) -> list[tuple[str, float]]:
        """Services linked to ``service_id`` with the connecting rate."""
        if service_id not in self.services:
            raise KeyError(f"no service {service_id}")
        out: list[tuple[str, float]] = []
        for link in self.links:
            if link.source == service_id:
                out.append((link.target, link.rate))
            elif link.target == service_id:
                out.append((link.source, link.rate))
        return out

    def input_rate(self, service_id: str) -> float:
        """Total stream rate entering a service."""
        return sum(l.rate for l in self.links if l.target == service_id)

    def output_links(self, service_id: str) -> list[CircuitLink]:
        return [l for l in self.links if l.source == service_id]

    def source_ids(self) -> list[str]:
        """Services with no incoming links (the producers)."""
        targets = {l.target for l in self.links}
        return [sid for sid in self.services if sid not in targets]

    def sink_ids(self) -> list[str]:
        """Services with no outgoing links (the consumer side)."""
        sources = {l.source for l in self.links}
        return [sid for sid in self.services if sid not in sources]

    # -- placement ---------------------------------------------------------

    def assign(self, service_id: str, node: int) -> None:
        """Place an unpinned service on a physical node."""
        service = self.services.get(service_id)
        if service is None:
            raise KeyError(f"no service {service_id}")
        if service.is_pinned and node != service.pinned_node:
            raise ValueError(f"cannot move pinned service {service_id}")
        if node < 0:
            raise ValueError("node index must be non-negative")
        self.placement[service_id] = node
        self._placement_version += 1

    def host_of(self, service_id: str) -> int:
        """Physical node hosting a service (raises if unplaced)."""
        if service_id not in self.placement:
            raise KeyError(f"service {service_id} is not placed")
        return self.placement[service_id]

    def is_fully_placed(self) -> bool:
        return all(sid in self.placement for sid in self.services)

    def hosts(self) -> set[int]:
        """All physical nodes used by the current placement."""
        return set(self.placement.values())

    def load_on(self, node: int) -> float:
        """CPU load this circuit's services add to ``node``."""
        total = 0.0
        for sid, service in self.services.items():
            if self.placement.get(sid) == node:
                total += processing_load(service.spec, self.input_rate(sid))
        return total

    def total_rate(self) -> float:
        """Sum of all link rates (data volume the circuit moves)."""
        return sum(l.rate for l in self.links)

    def set_link_rates(self, rates) -> None:
        """Re-estimate every link's rate in place (calibration).

        ``rates`` aligns with :attr:`links` order.  Used by the control
        plane to replace stale estimates with measured rates; structure
        and placement are untouched, so an executing data plane keeps
        its compiled realized behavior while every *pricing* consumer
        (evaluators, re-optimizers) sees the calibrated numbers.
        """
        if len(rates) != len(self.links):
            raise ValueError("rates must align with the circuit's links")
        self.links = [
            CircuitLink(link.source, link.target, float(rate))
            for link, rate in zip(self.links, rates)
        ]

    def copy(self) -> "Circuit":
        """Deep-enough copy: shared immutable services, fresh placement."""
        return Circuit(
            name=self.name,
            services=dict(self.services),
            links=list(self.links),
            placement=dict(self.placement),
        )


def effective_statistics(query: QuerySpec, stats: Statistics) -> Statistics:
    """Statistics with the query's pushed-down filters applied to rates."""
    rates = {}
    for producer in query.producers:
        base = stats.rate(producer.name)
        rates[producer.name] = base * query.filters.get(producer.name, 1.0)
    return Statistics(
        rates, dict(stats.selectivities), stats.default_selectivity
    )
