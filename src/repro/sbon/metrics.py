"""Time-series metrics for SBON simulations."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = ["TickRecord", "TimeSeries", "SCHEMA_VERSION"]

# Version of the exported TickRecord dict/JSONL schema.  Bump whenever a
# field is added, removed, renamed, or changes meaning; consumers key on
# the ``schema`` field every exported row carries.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TickRecord:
    """Snapshot of system health at one simulation tick.

    Attributes:
        tick: simulation time.
        network_usage: estimated Σ rate×latency over installed circuits.
        mean_load: mean effective node load.
        max_load: maximum effective node load.
        migrations: service migrations performed this tick.
        failures: node failures this tick.
        circuits: number of installed circuits.
        emitted: tuples emitted by data-plane sources this tick (0
            without a data plane; likewise for the fields below).
        delivered: tuples delivered to consumers this tick.
        dropped: tuples explicitly dropped this tick (backpressure,
            shed limits, dead nodes, uninstalls, buffer overflow).
        data_usage: *measured* network usage — Σ link latency over the
            tuples the data plane actually sent this tick.
        latency_p50: median end-to-end delivery latency (ms).
        latency_p95: 95th-percentile delivery latency (ms).
        latency_p99: 99th-percentile delivery latency (ms).
        shed: tuples dropped this tick by controller shed limits
            (subset of ``dropped``).
        redelivered: buffered tuples the reliable transport re-injected
            this tick.
        buffered: tuples parked in the retransmit buffer after the tick.
        calibrated_links: link rates the controller re-estimated from
            measurements this tick.
        control_triggers: 1 when the controller requested an immediate
            re-placement this tick (its migrations land in
            ``migrations``).
        cpu_cost: measured CPU cost units the data plane consumed this
            tick, summed over nodes (the unified load currency; equal
            to processed tuple counts under the unit load model).
        cpu_dropped: CPU cost units of admission demand rejected this
            tick (capacity + shed, at the admission price).
        recompiles: full data-plane kernel recompiles this tick (0 on
            the incremental arena path except for same-name circuit
            replacement) — the observable for compile churn.
    """

    tick: int
    network_usage: float
    mean_load: float
    max_load: float
    migrations: int = 0
    failures: int = 0
    circuits: int = 0
    emitted: int = 0
    delivered: int = 0
    dropped: int = 0
    data_usage: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    shed: int = 0
    redelivered: int = 0
    buffered: int = 0
    calibrated_links: int = 0
    control_triggers: int = 0
    cpu_cost: float = 0.0
    cpu_dropped: float = 0.0
    recompiles: int = 0

    def to_dict(self) -> dict:
        """All fields plus the ``schema`` version marker."""
        out = {"schema": SCHEMA_VERSION}
        out.update(asdict(self))
        return out


@dataclass
class TimeSeries:
    """An append-only sequence of tick records with summary helpers."""

    records: list[TickRecord] = field(default_factory=list)

    def append(self, record: TickRecord) -> None:
        if self.records and record.tick <= self.records[-1].tick:
            raise ValueError("tick records must be strictly increasing in time")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def to_jsonl(self, path) -> None:
        """One versioned JSON object per tick record."""
        with open(path, "w") as fh:
            for record in self.records:
                fh.write(json.dumps(record.to_dict()) + "\n")

    def usage_series(self) -> np.ndarray:
        return np.array([r.network_usage for r in self.records])

    def total_migrations(self) -> int:
        return sum(r.migrations for r in self.records)

    def total_failures(self) -> int:
        return sum(r.failures for r in self.records)

    def mean_usage(self) -> float:
        series = self.usage_series()
        return float(series.mean()) if series.size else 0.0

    def final_usage(self) -> float:
        return self.records[-1].network_usage if self.records else 0.0

    def peak_usage(self) -> float:
        series = self.usage_series()
        return float(series.max()) if series.size else 0.0

    def usage_percentile(self, q: float) -> float:
        series = self.usage_series()
        return float(np.percentile(series, q)) if series.size else 0.0

    def delivered_series(self) -> np.ndarray:
        return np.array([r.delivered for r in self.records])

    def total_delivered(self) -> int:
        return sum(r.delivered for r in self.records)

    def total_dropped(self) -> int:
        return sum(r.dropped for r in self.records)

    def mean_data_usage(self) -> float:
        series = np.array([r.data_usage for r in self.records])
        return float(series.mean()) if series.size else 0.0

    def mean_data_usage_over(self, start: int, stop: int | None = None) -> float:
        """Mean measured usage over a tick window (closed-loop metric)."""
        window = [
            r.data_usage
            for r in self.records
            if r.tick >= start and (stop is None or r.tick < stop)
        ]
        return float(np.mean(window)) if window else 0.0

    def total_shed(self) -> int:
        return sum(r.shed for r in self.records)

    def cpu_series(self) -> np.ndarray:
        return np.array([r.cpu_cost for r in self.records])

    def total_cpu_cost(self) -> float:
        return float(sum(r.cpu_cost for r in self.records))

    def total_cpu_dropped(self) -> float:
        return float(sum(r.cpu_dropped for r in self.records))

    def total_redelivered(self) -> int:
        return sum(r.redelivered for r in self.records)

    def total_calibrated_links(self) -> int:
        return sum(r.calibrated_links for r in self.records)

    def total_control_triggers(self) -> int:
        return sum(r.control_triggers for r in self.records)

    def summary(self) -> dict[str, float]:
        """Headline numbers for experiment tables."""
        out = {
            "ticks": float(len(self)),
            "mean_usage": self.mean_usage(),
            "final_usage": self.final_usage(),
            "peak_usage": self.peak_usage(),
            "migrations": float(self.total_migrations()),
            "failures": float(self.total_failures()),
        }
        if any(r.emitted or r.delivered or r.dropped for r in self.records):
            out["delivered"] = float(self.total_delivered())
            out["dropped"] = float(self.total_dropped())
            out["mean_data_usage"] = self.mean_data_usage()
            out["cpu_cost"] = self.total_cpu_cost()
            if self.total_cpu_dropped():
                out["cpu_dropped"] = self.total_cpu_dropped()
        if any(r.redelivered or r.buffered for r in self.records):
            out["redelivered"] = float(self.total_redelivered())
        if any(r.shed for r in self.records):
            out["shed"] = float(self.total_shed())
        if any(r.calibrated_links or r.control_triggers for r in self.records):
            out["calibrated_links"] = float(self.total_calibrated_links())
            out["control_triggers"] = float(self.total_control_triggers())
        return out
