"""Time-series metrics for SBON simulations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TickRecord", "TimeSeries"]


@dataclass(frozen=True)
class TickRecord:
    """Snapshot of system health at one simulation tick.

    Attributes:
        tick: simulation time.
        network_usage: true Σ rate×latency over installed circuits.
        mean_load: mean effective node load.
        max_load: maximum effective node load.
        migrations: service migrations performed this tick.
        failures: node failures this tick.
        circuits: number of installed circuits.
    """

    tick: int
    network_usage: float
    mean_load: float
    max_load: float
    migrations: int = 0
    failures: int = 0
    circuits: int = 0


@dataclass
class TimeSeries:
    """An append-only sequence of tick records with summary helpers."""

    records: list[TickRecord] = field(default_factory=list)

    def append(self, record: TickRecord) -> None:
        if self.records and record.tick <= self.records[-1].tick:
            raise ValueError("tick records must be strictly increasing in time")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def usage_series(self) -> np.ndarray:
        return np.array([r.network_usage for r in self.records])

    def total_migrations(self) -> int:
        return sum(r.migrations for r in self.records)

    def total_failures(self) -> int:
        return sum(r.failures for r in self.records)

    def mean_usage(self) -> float:
        series = self.usage_series()
        return float(series.mean()) if series.size else 0.0

    def final_usage(self) -> float:
        return self.records[-1].network_usage if self.records else 0.0

    def peak_usage(self) -> float:
        series = self.usage_series()
        return float(series.max()) if series.size else 0.0

    def usage_percentile(self, q: float) -> float:
        series = self.usage_series()
        return float(np.percentile(series, q)) if series.size else 0.0

    def summary(self) -> dict[str, float]:
        """Headline numbers for experiment tables."""
        return {
            "ticks": float(len(self)),
            "mean_usage": self.mean_usage(),
            "final_usage": self.final_usage(),
            "peak_usage": self.peak_usage(),
            "migrations": float(self.total_migrations()),
            "failures": float(self.total_failures()),
        }
