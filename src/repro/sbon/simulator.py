"""Tick-driven SBON simulation: dynamics + periodic re-optimization.

The simulation advances in discrete ticks.  Each tick:

1. the background-load process steps (and hotspots fire),
2. optional churn fails/recovers nodes; failed hosts are evacuated,
3. the cost space refreshes its scalar (load) dimensions,
4. every ``reopt_interval`` ticks, the re-optimizer runs one local pass
   per installed circuit and applies the resulting migrations,
5. the true network usage and load statistics are recorded.

This is the harness behind the re-optimization experiments (E7): with
re-optimization disabled the usage series degrades as conditions drift;
with it enabled the system tracks the moving optimum.

With ``data_plane=True`` (or an explicit
:class:`~repro.runtime.dataplane.DataPlane`), every installed circuit is
additionally *executed* each tick: sources emit real tuple batches,
operators join/filter/aggregate them, and the tick record gains the
measured traffic — delivered/dropped counts, measured network usage,
and end-to-end latency percentiles (E18).

With ``control=True`` (or an explicit
:class:`~repro.control.controller.Controller`), the loop closes: right
after the data plane executes, the controller ingests the tick's
measured statistics, periodically calibrates the circuits' estimated
link rates (and the cached re-optimizer kernel prices) from the
measured rates, and — when measured drops or latency breach policy —
requests an immediate backpressure-aware re-placement, which runs in
the same tick with the controller's drop-hot nodes excluded as
targets.

Performance architecture (struct-of-arrays)
-------------------------------------------

:meth:`Simulation.step` is array-backed end to end: each dynamics
process advances with one RNG draw + vectorized update, liveness
changes apply as one mask diff (``Overlay.apply_liveness``), the cost
space refreshes all scalar dimensions in one ``update_metrics`` batch,
the re-optimizer prices every installed circuit from one batched
mapping pass (``Reoptimizer.step_all``), and the usage/load statistics
are single array reductions.  :meth:`step_scalar` composes the retained
per-node / per-pair / per-candidate scalar references over the *same*
RNG draws, serving as the equivalence ground truth and the before-side
of the E17 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.controller import Controller
from repro.core.costs import GroundTruthEvaluator
from repro.core.reoptimizer import Reoptimizer
from repro.network.dynamics import ChurnProcess, LatencyDriftProcess, LoadProcess
from repro.runtime.dataplane import DataPlane
from repro.sbon.metrics import TickRecord, TimeSeries
from repro.sbon.overlay import Overlay

__all__ = ["SimulationConfig", "Simulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the tick loop.

    Attributes:
        reopt_interval: ticks between re-optimization passes; 0 disables
            re-optimization entirely (the static baseline).
        migration_threshold: hysteresis passed to the re-optimizer.
        use_ground_truth_for_reopt: if True the re-optimizer prices
            circuits with true latencies/loads (omniscient variant);
            if False it uses cost-space estimates (deployable variant).
        load_weight: load-penalty weight in re-optimization decisions.
        fused_reopt: if True (default) bulk re-optimization runs the
            fused cross-circuit arena pass (:meth:`Reoptimizer.
            step_all`); if False, the per-circuit kernel reference
            (:meth:`Reoptimizer.step_all_percircuit`).  Bit-identical
            by construction — the flag exists for twin testing and the
            E21 benchmark.
    """

    reopt_interval: int = 10
    migration_threshold: float = 0.02
    use_ground_truth_for_reopt: bool = False
    load_weight: float = 1.0
    fused_reopt: bool = True

    def __post_init__(self) -> None:
        if self.reopt_interval < 0:
            raise ValueError("reopt_interval must be >= 0")


class Simulation:
    """Owns an overlay plus its dynamic processes and runs the tick loop."""

    def __init__(
        self,
        overlay: Overlay,
        load_process: LoadProcess | None = None,
        latency_drift: LatencyDriftProcess | None = None,
        churn: ChurnProcess | None = None,
        config: SimulationConfig | None = None,
        data_plane: DataPlane | bool | None = None,
        control: Controller | bool | None = None,
        autoscaler=None,
        obs=None,
    ):
        self.overlay = overlay
        self.load_process = load_process
        self.latency_drift = latency_drift
        self.churn = churn
        self.config = config or SimulationConfig()
        if data_plane is True:
            self.data_plane: DataPlane | None = DataPlane(overlay)
        elif data_plane is False:
            self.data_plane = None
        else:
            self.data_plane = data_plane
        self.series = TimeSeries()
        self.tick = 0
        # Re-optimizer decision counters, accumulated across the fresh
        # per-pass Reoptimizer instances (observability only).
        self.reopt_accepts = 0
        self.reopt_rejects = 0
        self.reopt_arena_builds = 0
        # Observability layer (repro.obs.Observability) or None; wired
        # into the data plane and (below) the controller's event log.
        self.obs = obs
        if obs is not None and self.data_plane is not None:
            self.data_plane.attach_obs(obs)
        # Circuit kernels compiled by the re-optimizer survive across
        # ticks (structure is immutable; only placements change — and
        # the controller's calibration re-prices them in place).
        self._kernel_cache: dict = {}
        if control is True:
            if self.data_plane is None:
                raise ValueError("control=True requires a data plane")
            self.controller: Controller | None = Controller(
                self.data_plane, kernel_cache=self._kernel_cache
            )
        elif control is False or control is None:
            self.controller = None
        else:
            self.controller = control
            if self.controller.kernel_cache is None:
                self.controller.kernel_cache = self._kernel_cache
        if obs is not None and self.controller is not None:
            self.controller.events = obs.events
        # Optional elastic-scaling policy (repro.scaling.AutoScaler):
        # steps right after the controller, so scale decisions see the
        # same tick's measured CPU the controller just ingested.
        self.autoscaler = autoscaler
        if obs is not None and self.autoscaler is not None:
            self.autoscaler.events = obs.events
            self.autoscaler.registry = obs.registry

    def _make_reoptimizer(self) -> Reoptimizer:
        mapper = self.overlay.exhaustive_mapper()
        if self.config.use_ground_truth_for_reopt:
            evaluator = GroundTruthEvaluator(
                self.overlay.latencies, self.overlay.loads()
            )
        else:
            evaluator = self.overlay.estimate_evaluator()
        return Reoptimizer(
            self.overlay.cost_space,
            mapper=mapper,
            evaluator=evaluator,
            migration_threshold=self.config.migration_threshold,
            load_weight=self.config.load_weight,
            kernel_cache=self._kernel_cache,
        )

    def _harvest_reopt(self, reopt: Reoptimizer) -> None:
        """Fold a fresh pass instance's decision counters into the sim."""
        self.reopt_accepts += reopt.accepts
        self.reopt_rejects += reopt.rejects
        self.reopt_arena_builds += reopt.arena_builds

    def _advance(self, scalar: bool) -> TickRecord:
        """Advance one tick via the vectorized or the scalar-reference path."""
        self.tick += 1
        migrations = 0
        failures = 0
        obs = self.obs
        prof = None
        if obs is not None and obs.profiler is not None and obs.profiler.enabled:
            prof = obs.profiler

        # 1. Background load drift.  A cost-typed process (cpu_capacity
        # set) hands the overlay raw cost units plus its reference, so
        # load stays one currency end to end; fraction-typed processes
        # keep the legacy write.  Either way the step consumed the same
        # RNG draw, so scalar/vector twins stay aligned.
        if self.load_process is not None:
            if prof is not None:
                prof.begin("load")
            loads = (
                self.load_process.step_scalar()
                if scalar
                else self.load_process.step()
            )
            if self.load_process.cpu_capacity is not None:
                self.overlay.set_background_cost(
                    self.load_process.loads_cost(), self.load_process.cpu_capacity
                )
            else:
                self.overlay.set_background_loads(loads)
            if prof is not None:
                prof.end()

        # 2. Latency drift.
        if self.latency_drift is not None:
            if prof is not None:
                prof.begin("drift")
            self.overlay.latencies = (
                self.latency_drift.step_scalar()
                if scalar
                else self.latency_drift.step()
            )
            if prof is not None:
                prof.end()

        # 3. Churn: fail nodes, evacuate their services.
        if self.churn is not None:
            if prof is not None:
                prof.begin("churn")
            newly_failed = (
                self.churn.step_scalar() if scalar else self.churn.step()
            )
            failures = len(newly_failed)
            self.overlay.apply_liveness(self.churn.alive_mask())
            if newly_failed:
                self._evacuate(newly_failed, scalar=scalar)
            if prof is not None:
                prof.end()

        # 4. Refresh cost space; maybe re-optimize.
        if prof is not None:
            prof.begin("reopt")
        self.overlay.refresh_cost_space()
        if (
            self.config.reopt_interval
            and self.tick % self.config.reopt_interval == 0
        ):
            migrations += self._reoptimize_all(scalar=scalar)
        if prof is not None:
            prof.end()

        # 5. Execute the data plane: real tuples flow over the (possibly
        # just-migrated) placements, re-homing in-flight traffic.
        traffic = None
        if self.data_plane is not None:
            if prof is not None:
                prof.begin("data_plane")
            traffic = (
                self.data_plane.step_scalar() if scalar else self.data_plane.step()
            )
            if prof is not None:
                prof.end()

        # 6. Close the loop: the controller ingests the measurements,
        # calibrates estimates, and may demand a re-placement now.
        control = None
        if self.controller is not None and traffic is not None:
            if prof is not None:
                prof.begin("control")
            control = (
                self.controller.step_scalar(traffic)
                if scalar
                else self.controller.step(traffic)
            )
            if control.replace_triggered:
                migrations += self._reoptimize_all(
                    scalar=scalar, exclude=control.excluded_nodes
                )
            if control.evacuate_services:
                migrations += self._evacuate_buffered(
                    control.evacuate_services, scalar=scalar
                )
            if prof is not None:
                prof.end()

        # 6b. Elastic scaling: the autoscaler folds this tick's measured
        # per-family CPU into its EWMAs and may re-split or merge a
        # replica family (the data plane recompiles on its next sync,
        # re-homing in-flight tuples and per-key state).  Decisions are
        # RNG-free, so scalar/vector twins scale identically.
        if self.autoscaler is not None and traffic is not None:
            if prof is not None:
                prof.begin("scaling")
            self.autoscaler.step()
            if prof is not None:
                prof.end()

        # 7. Record.
        if prof is not None:
            prof.begin("record")
        loads = self.overlay.loads_scalar() if scalar else self.overlay.loads()
        usage = (
            self.overlay.total_network_usage_scalar()
            if scalar
            else self.overlay.total_network_usage()
        )
        record = TickRecord(
            tick=self.tick,
            network_usage=usage,
            mean_load=float(loads.mean()) if loads.size else 0.0,
            max_load=float(loads.max()) if loads.size else 0.0,
            migrations=migrations,
            failures=failures,
            circuits=len(self.overlay.circuits),
            emitted=traffic.emitted if traffic else 0,
            delivered=traffic.delivered if traffic else 0,
            dropped=traffic.dropped if traffic else 0,
            data_usage=traffic.usage if traffic else 0.0,
            latency_p50=traffic.latency_p50 if traffic else 0.0,
            latency_p95=traffic.latency_p95 if traffic else 0.0,
            latency_p99=traffic.latency_p99 if traffic else 0.0,
            shed=traffic.shed if traffic else 0,
            redelivered=traffic.redelivered if traffic else 0,
            buffered=traffic.buffered if traffic else 0,
            calibrated_links=control.calibrated_links if control else 0,
            control_triggers=int(control.replace_triggered) if control else 0,
            cpu_cost=traffic.cpu_cost if traffic else 0.0,
            cpu_dropped=traffic.cpu_dropped if traffic else 0.0,
            recompiles=traffic.recompiles if traffic else 0,
        )
        self.series.append(record)
        if prof is not None:
            prof.end()
        if obs is not None:
            obs.simulation_tick(self, record)
        return record

    def step(self) -> TickRecord:
        """Advance one tick; returns the recorded snapshot."""
        return self._advance(scalar=False)

    def step_scalar(self) -> TickRecord:
        """Advance one tick through the retained scalar reference loops.

        Consumes exactly the same RNG draws as :meth:`step`, so twin
        simulations stepped with either method stay equivalent — the
        before/after pair of the E17 benchmark.
        """
        return self._advance(scalar=True)

    def run(self, ticks: int) -> TimeSeries:
        """Advance ``ticks`` ticks; returns the accumulated series."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        for _ in range(ticks):
            self.step()
        return self.series

    def _evacuate(self, failed: list[int], scalar: bool = False) -> None:
        """Move services off failed nodes immediately."""
        reopt = self._make_reoptimizer()
        for node_id in failed:
            reopt.mapper.exclude(node_id)
        evacuate = reopt.evacuate_scalar if scalar else reopt.evacuate
        for circuit in self.overlay.circuits.values():
            for node_id in failed:
                if node_id not in circuit.hosts():
                    continue
                for migration in evacuate(circuit, node_id):
                    self.overlay.apply_migration(
                        circuit.name, migration.service_id, migration.to_node
                    )
        self._harvest_reopt(reopt)

    def _evacuate_buffered(
        self, services: tuple[tuple[str, str], ...], scalar: bool = False
    ) -> int:
        """Force re-placement of services under retransmit-buffer pressure.

        The controller names (circuit, service) pairs whose buffered
        backlog breached policy; each one's current host is evacuated
        with that host excluded as a target, so the buffered tuples
        re-home to the new placement and redeliver this tick instead of
        waiting out the outage.  Pinned services cannot move and are
        skipped by the evacuation pass.
        """
        reopt = self._make_reoptimizer()
        migrations = 0
        for circuit_name, service_id in services:
            circuit = self.overlay.circuits.get(circuit_name)
            if circuit is None or service_id not in circuit.services:
                continue
            node = circuit.host_of(service_id)
            if node is None:
                continue
            evacuate = reopt.evacuate_scalar if scalar else reopt.evacuate
            for migration in evacuate(circuit, node):
                self.overlay.apply_migration(
                    circuit.name, migration.service_id, migration.to_node
                )
                migrations += 1
        self._harvest_reopt(reopt)
        return migrations

    def _reoptimize_all(
        self, scalar: bool = False, exclude: tuple[int, ...] = ()
    ) -> int:
        """One local re-optimization pass over every circuit.

        The vectorized path maps every circuit's migration targets in a
        single batched pass (:meth:`Reoptimizer.step_all`).  ``exclude``
        removes nodes from the candidate pool for this pass only — the
        controller passes its measured drop hot spots here so a
        triggered re-placement is backpressure-aware.  Operator
        families the autoscaler re-split within its cooldown are frozen
        for the pass — their replicas keep the spread homes the scaler
        chose until the hold expires, instead of being herded back by
        the next placement sweep.
        """
        reopt = self._make_reoptimizer()
        for node in exclude:
            reopt.mapper.exclude(node)
        if self.autoscaler is not None:
            reopt.frozen = self.autoscaler.frozen_services()
        circuits = list(self.overlay.circuits.values())
        if scalar:
            reports = reopt.step_all_scalar(circuits)
        elif self.config.fused_reopt:
            reports = reopt.step_all(circuits)
        else:
            reports = reopt.step_all_percircuit(circuits)
        migrations = 0
        for circuit, report in zip(circuits, reports):
            for migration in report.migrations:
                # local_step already updated circuit.placement; sync the
                # node-level hosting (load bookkeeping).
                self.overlay.apply_migration(
                    circuit.name, migration.service_id, migration.to_node
                )
                migrations += 1
        self._harvest_reopt(reopt)
        return migrations
