"""SBON runtime substrate: nodes, the overlay assembly, tick simulation."""

from repro.sbon.metrics import TickRecord, TimeSeries
from repro.sbon.node import HostedService, SBONNode
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig

__all__ = [
    "TickRecord",
    "TimeSeries",
    "HostedService",
    "SBONNode",
    "Overlay",
    "Simulation",
    "SimulationConfig",
]
