"""The SBON overlay: nodes + latency ground truth + cost space, glued.

:class:`Overlay` is the main assembly point of the library: it owns the
physical substrate (topology → latency matrix), embeds it into a cost
space (Vivaldi by default), tracks per-node load, and hands out
optimizers wired to the current state.  The typical flow::

    topo    = transit_stub_topology(seed=1)
    overlay = Overlay.build(topo, vector_dims=2, seed=1)
    result  = overlay.integrated_optimizer().optimize(query, stats)
    overlay.install(result)          # circuit starts consuming CPU
    overlay.refresh_cost_space()     # loads appear in the coordinates
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.costs import CostSpaceEvaluator, GroundTruthEvaluator
from repro.core.circuit import Circuit
from repro.core.optimizer import (
    IntegratedOptimizer,
    OptimizationResult,
    RandomOptimizer,
    TwoStepOptimizer,
)
from repro.core.physical_mapping import CatalogMapper, ExhaustiveMapper, build_catalog
from repro.core.multi_query import MultiQueryOptimizer
from repro.core.reoptimizer import Reoptimizer
from repro.core.weighting import WeightingFunction, squared
from repro.network.latency import LatencyMatrix
from repro.network.topology import Topology
from repro.network.vivaldi import embed_latency_matrix
from repro.sbon.node import HostedService, SBONNode

__all__ = ["Overlay"]


class Overlay:
    """A running SBON: substrate state + cost space + deployed circuits."""

    def __init__(
        self,
        latencies: LatencyMatrix,
        cost_space: CostSpace,
        topology: Topology | None = None,
    ):
        if cost_space.num_nodes != latencies.num_nodes:
            raise ValueError("cost space and latency matrix disagree on node count")
        self.latencies = latencies
        self.cost_space = cost_space
        self.topology = topology
        self.nodes = [SBONNode(index=i) for i in range(latencies.num_nodes)]
        self.circuits: dict[str, Circuit] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        topology: Topology,
        vector_dims: int = 2,
        load_weighting: WeightingFunction | None = None,
        include_load_dimension: bool = True,
        embedding_rounds: int = 50,
        seed: int = 0,
    ) -> "Overlay":
        """Construct an overlay from a topology: embed, then assemble.

        Args:
            topology: the physical network.
            vector_dims: latency-embedding dimensionality.
            load_weighting: weighting of the CPU-load dimension
                (squared, per the paper, if None).
            include_load_dimension: False builds a pure latency space.
            embedding_rounds: Vivaldi gossip rounds.
            seed: embedding RNG seed.
        """
        latencies = LatencyMatrix.from_topology(topology)
        embedding = embed_latency_matrix(
            latencies, dimensions=vector_dims, rounds=embedding_rounds, seed=seed
        )
        if include_load_dimension:
            spec = CostSpaceSpec.latency_load(
                vector_dims=vector_dims,
                load_weighting=load_weighting or squared(),
            )
            metrics = {"cpu_load": np.zeros(latencies.num_nodes)}
        else:
            spec = CostSpaceSpec.latency_only(vector_dims=vector_dims)
            metrics = None
        space = CostSpace.from_embedding(spec, embedding.coordinates, metrics)
        return cls(latencies=latencies, cost_space=space, topology=topology)

    @property
    def num_nodes(self) -> int:
        return self.latencies.num_nodes

    # -- load & liveness ---------------------------------------------------

    def loads(self) -> np.ndarray:
        """Current effective load of every node."""
        return np.array([node.effective_load for node in self.nodes])

    def memory_loads(self) -> np.ndarray:
        """Current memory pressure of every node."""
        return np.array([node.memory_load for node in self.nodes])

    def set_background_loads(self, loads: np.ndarray | list[float]) -> None:
        """Update background loads (from a :class:`LoadProcess`)."""
        loads = np.asarray(loads, dtype=float)
        if loads.shape != (self.num_nodes,):
            raise ValueError("load vector has wrong shape")
        for node, load in zip(self.nodes, loads):
            node.background_load = float(load)

    def alive_flags(self) -> list[bool]:
        return [node.alive for node in self.nodes]

    def failed_nodes(self) -> set[int]:
        return {node.index for node in self.nodes if not node.alive}

    def refresh_cost_space(self) -> None:
        """Recompute the scalar dimensions from current node state.

        Supplies every metric the space's spec declares; supported
        providers are ``cpu_load`` and ``memory``.
        """
        declared = {d.metric for d in self.cost_space.spec.scalar_dimensions}
        if not declared:
            return
        providers = {"cpu_load": self.loads, "memory": self.memory_loads}
        unknown = declared - set(providers)
        if unknown:
            raise ValueError(f"no metric providers for {sorted(unknown)}")
        self.cost_space.update_metrics(
            {metric: providers[metric]() for metric in declared}
        )

    # -- circuit lifecycle ---------------------------------------------------

    def install(self, result: OptimizationResult) -> None:
        """Deploy an optimized circuit: host its services on nodes."""
        self.install_circuit(result.circuit)

    def install_circuit(self, circuit: Circuit) -> None:
        """Deploy an already-placed circuit."""
        if circuit.name in self.circuits:
            raise ValueError(f"circuit {circuit.name} already installed")
        if not circuit.is_fully_placed():
            raise ValueError("circuit must be fully placed before installation")
        for sid in circuit.unpinned_ids():
            node = self.nodes[circuit.host_of(sid)]
            node.host(
                HostedService(
                    circuit_name=circuit.name,
                    service_id=sid,
                    spec=circuit.services[sid].spec,
                    input_rate=circuit.input_rate(sid),
                )
            )
        self.circuits[circuit.name] = circuit

    def uninstall(self, circuit_name: str) -> None:
        """Tear a circuit down, releasing its load everywhere."""
        if circuit_name not in self.circuits:
            raise KeyError(f"no circuit {circuit_name}")
        for node in self.nodes:
            node.evict(circuit_name)
        del self.circuits[circuit_name]

    def apply_migration(self, circuit_name: str, service_id: str, to_node: int) -> None:
        """Move one hosted service to a new node (post-reoptimization)."""
        circuit = self.circuits[circuit_name]
        for node in self.nodes:
            node.evict(circuit_name, service_id)
        self.nodes[to_node].host(
            HostedService(
                circuit_name=circuit_name,
                service_id=service_id,
                spec=circuit.services[service_id].spec,
                input_rate=circuit.input_rate(service_id),
            )
        )
        circuit.assign(service_id, to_node)

    # -- factories ---------------------------------------------------------

    def ground_truth_evaluator(self) -> GroundTruthEvaluator:
        """Evaluator pricing circuits with true latencies and loads."""
        return GroundTruthEvaluator(self.latencies, self.loads())

    def estimate_evaluator(self) -> CostSpaceEvaluator:
        """Evaluator pricing circuits with cost-space estimates."""
        return CostSpaceEvaluator(self.cost_space)

    def exhaustive_mapper(self) -> ExhaustiveMapper:
        return ExhaustiveMapper(self.cost_space, excluded=self.failed_nodes())

    def catalog_mapper(self, bits: int = 10, ring_size: int = 64) -> CatalogMapper:
        """Decentralized mapper over a freshly published catalog."""
        catalog = build_catalog(
            self.cost_space, bits=bits, ring_size=ring_size, alive=self.alive_flags()
        )
        return CatalogMapper(self.cost_space, catalog)

    def integrated_optimizer(self, **kwargs) -> IntegratedOptimizer:
        kwargs.setdefault("mapper", self.exhaustive_mapper())
        return IntegratedOptimizer(self.cost_space, **kwargs)

    def two_step_optimizer(self, **kwargs) -> TwoStepOptimizer:
        kwargs.setdefault("mapper", self.exhaustive_mapper())
        return TwoStepOptimizer(self.cost_space, **kwargs)

    def random_optimizer(self, seed: int = 0, **kwargs) -> RandomOptimizer:
        return RandomOptimizer(self.cost_space, seed=seed, **kwargs)

    def multi_query_optimizer(self, radius: float, **kwargs) -> MultiQueryOptimizer:
        kwargs.setdefault("mapper", self.exhaustive_mapper())
        return MultiQueryOptimizer(self.cost_space, radius, **kwargs)

    def reoptimizer(self, **kwargs) -> Reoptimizer:
        kwargs.setdefault("mapper", self.exhaustive_mapper())
        return Reoptimizer(self.cost_space, **kwargs)

    # -- reporting ---------------------------------------------------------

    def total_network_usage(self) -> float:
        """True Σ rate×latency over all installed circuits."""
        from repro.core.costs import network_usage

        return sum(
            network_usage(circuit, self.latencies.latency)
            for circuit in self.circuits.values()
        )
