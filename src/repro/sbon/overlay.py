"""The SBON overlay: nodes + latency ground truth + cost space, glued.

:class:`Overlay` is the main assembly point of the library: it owns the
physical substrate (topology → latency matrix), embeds it into a cost
space (Vivaldi by default), tracks per-node load, and hands out
optimizers wired to the current state.  The typical flow::

    topo    = transit_stub_topology(seed=1)
    overlay = Overlay.build(topo, vector_dims=2, seed=1)
    result  = overlay.integrated_optimizer().optimize(query, stats)
    overlay.install(result)          # circuit starts consuming CPU
    overlay.refresh_cost_space()     # loads appear in the coordinates

Performance architecture (struct-of-arrays)
-------------------------------------------

Load and memory state lives in contiguous ``(n,)`` arrays maintained
incrementally by the circuit-lifecycle methods: ``set_background_loads``
is a single array write, :meth:`loads` / :meth:`memory_loads` are single
vectorized expressions, and :meth:`total_network_usage` reduces one
cached (link-endpoint, rate) index over the latency matrix.  The
:class:`SBONNode` objects remain the API for hosting and liveness, but
their ``background_load`` attribute is synchronized lazily — access
them through the :attr:`nodes` property (as all code here does) rather
than a stashed reference taken before a ``set_background_loads`` call.
Batch liveness changes should go through :meth:`apply_liveness`; the
per-node reference loops are retained as ``loads_scalar`` /
``total_network_usage_scalar``.  Capacities are cached in arrays at
construction — change them via :meth:`set_node_capacity` (or call
:meth:`sync_capacities` after mutating node objects directly) so the
vectorized paths see the update.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.costs import CostSpaceEvaluator, GroundTruthEvaluator
from repro.core.circuit import Circuit
from repro.core.optimizer import (
    IntegratedOptimizer,
    OptimizationResult,
    RandomOptimizer,
    TwoStepOptimizer,
)
from repro.core.physical_mapping import CatalogMapper, ExhaustiveMapper, build_catalog
from repro.core.multi_query import MultiQueryOptimizer
from repro.core.reoptimizer import Reoptimizer
from repro.core.weighting import WeightingFunction, squared
from repro.network.latency import LatencyMatrix
from repro.network.topology import Topology
from repro.network.vivaldi import embed_latency_matrix
from repro.sbon.node import HostedService, SBONNode

__all__ = ["Overlay"]


class Overlay:
    """A running SBON: substrate state + cost space + deployed circuits."""

    def __init__(
        self,
        latencies: LatencyMatrix,
        cost_space: CostSpace,
        topology: Topology | None = None,
    ):
        if cost_space.num_nodes != latencies.num_nodes:
            raise ValueError("cost space and latency matrix disagree on node count")
        self.latencies = latencies
        self.cost_space = cost_space
        self.topology = topology
        n = latencies.num_nodes
        self._nodes = [SBONNode(index=i) for i in range(n)]
        self.circuits: dict[str, Circuit] = {}
        # Array-backed load/memory state (source of truth for loads()).
        self._background = np.zeros(n)
        self._induced = np.zeros(n)
        self._memory = np.zeros(n)
        # Measured CPU load fractions, fed by the control plane's cost
        # accounting (see set_measured_cpu); inactive until first write.
        self._measured_cpu = np.zeros(n)
        self._measured_active = False
        self._capacity = np.array([node.capacity for node in self._nodes])
        self._memory_capacity = np.array(
            [node.memory_capacity for node in self._nodes]
        )
        self._background_synced = True
        # CPU-cost reference a cost-unit background feed was normalized
        # with (set_background_cost); None until the load process speaks
        # the unified cost currency.
        self._cpu_ref: float | None = None
        # (circuit name, service id) -> hosting node index.
        self._host_of: dict[tuple[str, str], int] = {}
        # Segmented usage link index (PR 7): per-circuit contiguous
        # (src host, dst host, rate) rows in grow-only columns.
        # Installs append a segment, uninstalls tombstone it (compacting
        # past 25% dead), migrations rewrite one segment in place; only
        # invalidate_usage_cache forces a full rebuild.
        self._u_src = np.zeros(0, dtype=int)
        self._u_dst = np.zeros(0, dtype=int)
        self._u_rate = np.zeros(0)
        self._u_alive = np.zeros(0, dtype=bool)
        self._u_len = 0
        self._u_dead = 0
        self._u_seg: dict[str, tuple[int, int]] = {}  # name -> (base, count)
        self._u_stale = False
        # Cached (live src, live dst, live rates) triple for the reduce.
        self._usage_index: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        topology: Topology,
        vector_dims: int = 2,
        load_weighting: WeightingFunction | None = None,
        include_load_dimension: bool = True,
        embedding_rounds: int = 50,
        seed: int = 0,
    ) -> "Overlay":
        """Construct an overlay from a topology: embed, then assemble.

        Args:
            topology: the physical network.
            vector_dims: latency-embedding dimensionality.
            load_weighting: weighting of the CPU-load dimension
                (squared, per the paper, if None).
            include_load_dimension: False builds a pure latency space.
            embedding_rounds: Vivaldi gossip rounds.
            seed: embedding RNG seed.
        """
        latencies = LatencyMatrix.from_topology(topology)
        embedding = embed_latency_matrix(
            latencies, dimensions=vector_dims, rounds=embedding_rounds, seed=seed
        )
        if include_load_dimension:
            spec = CostSpaceSpec.latency_load(
                vector_dims=vector_dims,
                load_weighting=load_weighting or squared(),
            )
            metrics = {"cpu_load": np.zeros(latencies.num_nodes)}
        else:
            spec = CostSpaceSpec.latency_only(vector_dims=vector_dims)
            metrics = None
        space = CostSpace.from_embedding(spec, embedding.coordinates, metrics)
        return cls(latencies=latencies, cost_space=space, topology=topology)

    @property
    def num_nodes(self) -> int:
        return self.latencies.num_nodes

    @property
    def nodes(self) -> list[SBONNode]:
        """The node objects, with background loads synchronized."""
        if not self._background_synced:
            for node, load in zip(self._nodes, self._background):
                node.background_load = float(load)
            self._background_synced = True
        return self._nodes

    # -- load & liveness ---------------------------------------------------

    def loads(self) -> np.ndarray:
        """Current effective load of every node (one vectorized pass).

        The estimated part — background plus the hosted services'
        modeled load, over capacity — is topped up by the *measured*
        CPU load fraction once the control plane starts writing it
        (:meth:`set_measured_cpu`), so the cost space's load dimension
        tracks real compute pressure, not just the model.
        """
        raw = np.clip((self._background + self._induced) / self._capacity, 0.0, 1.0)
        if self._measured_active:
            raw = np.clip(raw + self._measured_cpu, 0.0, 1.0)
        return raw

    def loads_scalar(self) -> np.ndarray:
        """Per-node loop over node state (retained scalar reference)."""
        base = np.array([node.effective_load for node in self.nodes])
        if self._measured_active:
            base = np.array(
                [min(1.0, b + m) for b, m in zip(base, self._measured_cpu)]
            )
        return base

    def memory_loads(self) -> np.ndarray:
        """Current memory pressure of every node (one vectorized pass)."""
        return np.clip(self._memory / self._memory_capacity, 0.0, 1.0)

    def set_background_loads(self, loads: np.ndarray | list[float]) -> None:
        """Update background loads (from a :class:`LoadProcess`).

        One array write; node objects are synchronized lazily on the
        next :attr:`nodes` access.
        """
        loads = np.asarray(loads, dtype=float)
        if loads.shape != (self.num_nodes,):
            raise ValueError("load vector has wrong shape")
        self._background = loads.astype(float, copy=True)
        self._background_synced = False

    def set_background_cost(
        self, costs: np.ndarray | list[float], cpu_ref: float
    ) -> None:
        """Update background demand given in CPU *cost units per tick*.

        The unified-currency twin of :meth:`set_background_loads`: a
        load process that speaks the runtime's cost currency
        (``LoadProcess(cpu_capacity=...)``) hands its raw per-node cost
        output here together with the per-tick cost capacity it walks
        against; the overlay normalizes once (``cost / cpu_ref``) and
        stores the fraction, so :meth:`loads` / :meth:`loads_scalar`
        and every downstream consumer behave identically to the
        fraction-fed path.  ``cpu_ref`` is remembered and served by
        :meth:`cpu_reference` so the control plane can share the same
        reference instead of guessing its own.
        """
        if cpu_ref <= 0:
            raise ValueError("cpu_ref must be positive")
        costs = np.asarray(costs, dtype=float)
        if costs.shape != (self.num_nodes,):
            raise ValueError("cost vector has wrong shape")
        self._cpu_ref = float(cpu_ref)
        self.set_background_loads(np.clip(costs / cpu_ref, 0.0, 1.0))

    def cpu_reference(self) -> float | None:
        """The CPU-cost reference of the background feed, if cost-typed.

        None until :meth:`set_background_cost` has been called — i.e.
        while background load arrives as plain fractions.
        """
        return self._cpu_ref

    def set_measured_cpu(self, fractions: np.ndarray | list[float]) -> None:
        """Feed measured per-node CPU load into the load dimension.

        ``fractions`` are measured cost rates normalized to [0, 1] of a
        full node (the controller's ``calibrate_cpu`` write-back —
        CPU cost units per tick over the cost-rate reference).  They
        add on top of the estimated load in :meth:`loads` until
        :meth:`clear_measured_cpu`, so placement decisions price real
        compute pressure in the same currency as the kernels charge it.
        """
        fractions = np.asarray(fractions, dtype=float)
        if fractions.shape != (self.num_nodes,):
            raise ValueError("measured CPU vector has wrong shape")
        if np.any(fractions < 0) or np.any(fractions > 1):
            raise ValueError("measured CPU fractions must be in [0, 1]")
        self._measured_cpu = fractions.copy()
        self._measured_active = True

    def clear_measured_cpu(self) -> None:
        """Drop the measured CPU component from :meth:`loads`."""
        self._measured_cpu = np.zeros(self.num_nodes)
        self._measured_active = False

    def set_node_capacity(
        self,
        node: int,
        capacity: float | None = None,
        memory_capacity: float | None = None,
    ) -> None:
        """Change a node's capacity after construction.

        Writes through to both the :class:`SBONNode` object and the
        cached arrays behind the vectorized :meth:`loads` /
        :meth:`memory_loads` paths, which snapshot capacities at build
        time and would otherwise serve stale values.
        """
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside overlay")
        if capacity is not None:
            if capacity <= 0:
                raise ValueError("capacity must be positive")
            self._nodes[node].capacity = float(capacity)
            self._capacity[node] = float(capacity)
        if memory_capacity is not None:
            if memory_capacity <= 0:
                raise ValueError("memory capacity must be positive")
            self._nodes[node].memory_capacity = float(memory_capacity)
            self._memory_capacity[node] = float(memory_capacity)

    def sync_capacities(self) -> None:
        """Re-read capacities from the node objects into the cached arrays.

        For callers that mutated ``node.capacity`` directly instead of
        going through :meth:`set_node_capacity`.
        """
        self._capacity = np.array([node.capacity for node in self._nodes])
        self._memory_capacity = np.array(
            [node.memory_capacity for node in self._nodes]
        )

    def alive_flags(self) -> list[bool]:
        return [node.alive for node in self._nodes]

    def alive_mask(self) -> np.ndarray:
        """Per-node liveness as a boolean array."""
        return np.fromiter(
            (node.alive for node in self._nodes), dtype=bool, count=len(self._nodes)
        )

    def failed_nodes(self) -> set[int]:
        return {node.index for node in self._nodes if not node.alive}

    def apply_liveness(self, alive: np.ndarray | list[bool]) -> tuple[list[int], list[int]]:
        """Apply a liveness mask (from churn) in one batched diff.

        Only nodes whose flag changed are touched: newly-failed nodes
        are downed and their hosted services dropped (the caller is
        expected to evacuate the affected circuits); newly-recovered
        nodes come back empty-handed.

        Returns:
            ``(newly_failed, newly_recovered)`` node index lists.
        """
        alive = np.asarray(alive, dtype=bool)
        if alive.shape != (self.num_nodes,):
            raise ValueError("liveness mask has wrong shape")
        current = self.alive_mask()
        newly_failed = [int(i) for i in np.flatnonzero(current & ~alive)]
        newly_recovered = [int(i) for i in np.flatnonzero(~current & alive)]
        for idx in newly_failed:
            orphans = self._nodes[idx].fail()
            for service in orphans:
                self._host_of.pop((service.circuit_name, service.service_id), None)
            self._induced[idx] = 0.0
            self._memory[idx] = 0.0
        for idx in newly_recovered:
            self._nodes[idx].recover()
        return newly_failed, newly_recovered

    def refresh_cost_space(self) -> None:
        """Recompute the scalar dimensions from current node state.

        Supplies every metric the space's spec declares in one
        ``update_metrics`` batch; supported providers are ``cpu_load``
        and ``memory``.
        """
        declared = {d.metric for d in self.cost_space.spec.scalar_dimensions}
        if not declared:
            return
        providers = {"cpu_load": self.loads, "memory": self.memory_loads}
        unknown = declared - set(providers)
        if unknown:
            raise ValueError(f"no metric providers for {sorted(unknown)}")
        self.cost_space.update_metrics(
            {metric: providers[metric]() for metric in declared}
        )

    # -- circuit lifecycle ---------------------------------------------------

    def _host_service(self, node_index: int, service: HostedService) -> None:
        """Host a service and update the induced-load arrays."""
        self._nodes[node_index].host(service)
        self._induced[node_index] += service.load
        self._memory[node_index] += service.state_units
        self._host_of[(service.circuit_name, service.service_id)] = node_index

    def _evict_service(self, circuit_name: str, service_id: str) -> None:
        """Evict one service (wherever the hosting map says it lives)."""
        node_index = self._host_of.pop((circuit_name, service_id), None)
        if node_index is None:
            return
        node = self._nodes[node_index]
        for service in node.hosted:
            if (
                service.circuit_name == circuit_name
                and service.service_id == service_id
            ):
                node.hosted.remove(service)
                self._induced[node_index] -= service.load
                self._memory[node_index] -= service.state_units
                return

    def install(self, result: OptimizationResult) -> None:
        """Deploy an optimized circuit: host its services on nodes."""
        self.install_circuit(result.circuit)

    def install_circuit(self, circuit: Circuit) -> None:
        """Deploy an already-placed circuit."""
        if circuit.name in self.circuits:
            raise ValueError(f"circuit {circuit.name} already installed")
        if not circuit.is_fully_placed():
            raise ValueError("circuit must be fully placed before installation")
        for sid in circuit.unpinned_ids():
            self._host_service(
                circuit.host_of(sid),
                HostedService(
                    circuit_name=circuit.name,
                    service_id=sid,
                    spec=circuit.services[sid].spec,
                    input_rate=circuit.input_rate(sid),
                ),
            )
        self.circuits[circuit.name] = circuit
        self._usage_append(circuit)

    def replace_circuit(self, circuit: Circuit) -> None:
        """Swap an installed circuit for a rewritten version in place.

        The scale-event path: the autoscaler rewrites a circuit
        (replicate / merge) and swaps it under the same name.  The old
        version's unpinned services are evicted, the new version's are
        hosted, and the ``circuits`` dict entry is updated *in place* —
        preserving the dict's key order, which is the order the data
        plane's per-tick source draw consumes, so an executing twin
        pair stays tick-for-tick equivalent across the swap.  The data
        plane notices the new object identity on its next ``_sync`` and
        recompiles with keyed state re-homing.
        """
        old = self.circuits.get(circuit.name)
        if old is None:
            raise KeyError(f"no circuit {circuit.name} installed")
        if not circuit.is_fully_placed():
            raise ValueError("circuit must be fully placed before installation")
        for sid in old.unpinned_ids():
            self._evict_service(circuit.name, sid)
        for sid in circuit.unpinned_ids():
            self._host_service(
                circuit.host_of(sid),
                HostedService(
                    circuit_name=circuit.name,
                    service_id=sid,
                    spec=circuit.services[sid].spec,
                    input_rate=circuit.input_rate(sid),
                ),
            )
        self.circuits[circuit.name] = circuit
        # Link count usually changes (split links appear/disappear), so
        # the usage segment is rebuilt rather than rewritten.
        self._usage_remove(circuit.name)
        self._usage_append(circuit)

    def uninstall(self, circuit_name: str) -> None:
        """Tear a circuit down, releasing its load everywhere."""
        if circuit_name not in self.circuits:
            raise KeyError(f"no circuit {circuit_name}")
        circuit = self.circuits[circuit_name]
        for sid in circuit.unpinned_ids():
            self._evict_service(circuit_name, sid)
        del self.circuits[circuit_name]
        self._usage_remove(circuit_name)

    def apply_migration(self, circuit_name: str, service_id: str, to_node: int) -> None:
        """Move one hosted service to a new node (post-reoptimization)."""
        circuit = self.circuits[circuit_name]
        self._evict_service(circuit_name, service_id)
        self._host_service(
            to_node,
            HostedService(
                circuit_name=circuit_name,
                service_id=service_id,
                spec=circuit.services[service_id].spec,
                input_rate=circuit.input_rate(service_id),
            ),
        )
        circuit.assign(service_id, to_node)
        self._usage_rewrite(circuit_name)

    # -- factories ---------------------------------------------------------

    def ground_truth_evaluator(self) -> GroundTruthEvaluator:
        """Evaluator pricing circuits with true latencies and loads."""
        return GroundTruthEvaluator(self.latencies, self.loads())

    def estimate_evaluator(self) -> CostSpaceEvaluator:
        """Evaluator pricing circuits with cost-space estimates."""
        return CostSpaceEvaluator(self.cost_space)

    def exhaustive_mapper(self) -> ExhaustiveMapper:
        return ExhaustiveMapper(self.cost_space, excluded=self.failed_nodes())

    def catalog_mapper(self, bits: int = 10, ring_size: int = 64) -> CatalogMapper:
        """Decentralized mapper over a freshly published catalog."""
        catalog = build_catalog(
            self.cost_space, bits=bits, ring_size=ring_size, alive=self.alive_flags()
        )
        return CatalogMapper(self.cost_space, catalog)

    def integrated_optimizer(self, **kwargs) -> IntegratedOptimizer:
        kwargs.setdefault("mapper", self.exhaustive_mapper())
        return IntegratedOptimizer(self.cost_space, **kwargs)

    def two_step_optimizer(self, **kwargs) -> TwoStepOptimizer:
        kwargs.setdefault("mapper", self.exhaustive_mapper())
        return TwoStepOptimizer(self.cost_space, **kwargs)

    def random_optimizer(self, seed: int = 0, **kwargs) -> RandomOptimizer:
        return RandomOptimizer(self.cost_space, seed=seed, **kwargs)

    def multi_query_optimizer(self, radius: float, **kwargs) -> MultiQueryOptimizer:
        kwargs.setdefault("mapper", self.exhaustive_mapper())
        return MultiQueryOptimizer(self.cost_space, radius, **kwargs)

    def reoptimizer(self, **kwargs) -> Reoptimizer:
        kwargs.setdefault("mapper", self.exhaustive_mapper())
        return Reoptimizer(self.cost_space, **kwargs)

    # -- reporting ---------------------------------------------------------

    def invalidate_usage_cache(self) -> None:
        """Rebuild the usage link index from scratch on next use.

        Install/uninstall/migration maintain the segmented index
        incrementally; call this when circuit *link rates* change in
        place (the control plane's calibration), which the lifecycle
        hooks cannot see.
        """
        self._u_stale = True
        self._usage_index = None

    # -- segmented usage index (PR 7) ---------------------------------------

    def _u_grow(self, extra: int) -> None:
        """Ensure column capacity for ``extra`` more rows (doubling)."""
        need = self._u_len + extra
        if need <= self._u_src.size:
            return
        cap = max(need, 2 * self._u_src.size, 16)
        for attr in ("_u_src", "_u_dst", "_u_rate", "_u_alive"):
            old = getattr(self, attr)
            buf = np.zeros(cap, dtype=old.dtype)
            buf[: self._u_len] = old[: self._u_len]
            setattr(self, attr, buf)

    def _usage_write(self, circuit: Circuit, base: int) -> None:
        """Write a circuit's link rows at ``base`` (segment-sized slot)."""
        placement = circuit.placement
        for j, link in enumerate(circuit.links):
            self._u_src[base + j] = placement[link.source]
            self._u_dst[base + j] = placement[link.target]
            self._u_rate[base + j] = link.rate

    def _usage_append(self, circuit: Circuit) -> None:
        """Claim and fill a fresh tail segment for a newly installed circuit."""
        m = len(circuit.links)
        self._u_grow(m)
        base = self._u_len
        self._usage_write(circuit, base)
        self._u_alive[base : base + m] = True
        self._u_len = base + m
        self._u_seg[circuit.name] = (base, m)
        self._usage_index = None

    def _usage_remove(self, name: str) -> None:
        """Tombstone an uninstalled circuit's segment; maybe compact."""
        seg = self._u_seg.pop(name, None)
        if seg is None:  # unknown to the index — fall back to a rebuild
            self.invalidate_usage_cache()
            return
        base, m = seg
        self._u_alive[base : base + m] = False
        self._u_dead += m
        if self._u_len and self._u_dead / self._u_len > 0.25:
            self._u_compact()
        self._usage_index = None

    def _usage_rewrite(self, name: str) -> None:
        """Rewrite one circuit's segment in place (migration, same shape)."""
        circuit = self.circuits[name]
        seg = self._u_seg.get(name)
        if seg is None or seg[1] != len(circuit.links):
            self.invalidate_usage_cache()
            return
        self._usage_write(circuit, seg[0])
        self._usage_index = None

    def _u_compact(self) -> None:
        """Slide live rows left over the tombstoned holes, in order."""
        live = np.flatnonzero(self._u_alive[: self._u_len])
        for attr in ("_u_src", "_u_dst", "_u_rate"):
            col = getattr(self, attr)
            col[: live.size] = col[live]  # fancy index copies first: safe
        self._u_alive[: live.size] = True
        self._u_alive[live.size : self._u_len] = False
        self._u_len = int(live.size)
        self._u_dead = 0
        base = 0
        # Dict order is install order, which equals row order.
        for name, (_, m) in list(self._u_seg.items()):
            self._u_seg[name] = (base, m)
            base += m

    def _u_rebuild(self) -> None:
        """Full rebuild from the installed circuits (invalidate path)."""
        self._u_len = 0
        self._u_dead = 0
        self._u_seg = {}
        self._u_alive[:] = False
        for circuit in self.circuits.values():
            if not circuit.is_fully_placed():
                raise ValueError(f"circuit {circuit.name} is not fully placed")
            self._usage_append(circuit)
        self._u_stale = False

    def _link_index(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached (source hosts, target hosts, rates) over live rows.

        Maintained incrementally by install / uninstall / migration;
        the steady-state tick reuses the cached triple untouched.
        """
        if self._u_stale:
            self._u_rebuild()
        if self._usage_index is None:
            if self._u_dead:
                rows = np.flatnonzero(self._u_alive[: self._u_len])
                self._usage_index = (
                    self._u_src[rows],
                    self._u_dst[rows],
                    self._u_rate[rows],
                )
            else:
                n = self._u_len
                self._usage_index = (
                    self._u_src[:n],
                    self._u_dst[:n],
                    self._u_rate[:n],
                )
        return self._usage_index

    def total_network_usage(self) -> float:
        """True Σ rate×latency over all installed circuits (one reduce).

        The latency matrix diagonal is zero, so colocated links
        contribute nothing, exactly as in the per-link scalar loop.
        """
        u, v, rates = self._link_index()
        if u.size == 0:
            return 0.0
        return float(np.dot(rates, self.latencies.values[u, v]))

    def total_network_usage_scalar(self) -> float:
        """Per-circuit per-link Python loop (retained scalar reference)."""
        from repro.core.costs import network_usage

        return sum(
            network_usage(circuit, self.latencies.latency)
            for circuit in self.circuits.values()
        )
