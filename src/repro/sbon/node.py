"""SBON node state: background load plus load induced by hosted services.

A node's CPU load has two parts: *background* load from unrelated work
(driven by :class:`repro.network.dynamics.LoadProcess`) and *induced*
load from the circuit services it hosts (via the operator resource
model).  The sum, clamped to capacity, is the raw metric behind the
cost space's load dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.operators import ServiceKind, ServiceSpec, processing_load

__all__ = ["HostedService", "SBONNode"]


@dataclass(frozen=True)
class HostedService:
    """A service instance resident on a node."""

    circuit_name: str
    service_id: str
    spec: ServiceSpec
    input_rate: float

    @property
    def load(self) -> float:
        return processing_load(self.spec, self.input_rate)

    @property
    def state_units(self) -> float:
        """Buffered-state estimate (memory pressure).

        Windowed operators hold their window of input: a JOIN buffers
        ``input_rate x window`` tuples on both sides; an AGGREGATE holds
        a compressed summary (~10% of the window); stateless services
        hold nothing.
        """
        kind = self.spec.kind
        window_state = self.input_rate * self.spec.window_seconds
        if kind is ServiceKind.JOIN:
            return window_state
        if kind is ServiceKind.AGGREGATE:
            return 0.1 * window_state
        return 0.0


@dataclass
class SBONNode:
    """One overlay participant.

    Attributes:
        index: physical node index (matches topology/latency indices).
        capacity: load capacity; effective load is clamped to it.
        background_load: load from non-SBON work.
        hosted: services currently resident.
        alive: liveness flag (churn).
    """

    index: int
    capacity: float = 1.0
    background_load: float = 0.0
    memory_capacity: float = 10_000.0
    hosted: list[HostedService] = field(default_factory=list)
    alive: bool = True

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.background_load < 0:
            raise ValueError("background load must be non-negative")
        if self.memory_capacity <= 0:
            raise ValueError("memory capacity must be positive")

    @property
    def induced_load(self) -> float:
        """Load from hosted circuit services."""
        return sum(service.load for service in self.hosted)

    @property
    def effective_load(self) -> float:
        """Total load as a fraction of capacity, clamped to [0, 1]."""
        raw = (self.background_load + self.induced_load) / self.capacity
        return min(max(raw, 0.0), 1.0)

    @property
    def headroom(self) -> float:
        """Remaining load fraction before saturation."""
        return 1.0 - self.effective_load

    @property
    def memory_units(self) -> float:
        """Buffered state held by hosted services."""
        return sum(service.state_units for service in self.hosted)

    @property
    def memory_load(self) -> float:
        """Memory pressure as a fraction of capacity, clamped to [0, 1]."""
        raw = self.memory_units / self.memory_capacity
        return min(max(raw, 0.0), 1.0)

    def host(self, service: HostedService) -> None:
        """Install a service on this node."""
        if not self.alive:
            raise RuntimeError(f"node {self.index} is down")
        for existing in self.hosted:
            if (
                existing.circuit_name == service.circuit_name
                and existing.service_id == service.service_id
            ):
                raise ValueError(
                    f"service {service.service_id} already hosted on node {self.index}"
                )
        self.hosted.append(service)

    def evict(self, circuit_name: str, service_id: str | None = None) -> int:
        """Remove services of a circuit (one or all); returns count evicted."""
        before = len(self.hosted)
        self.hosted = [
            s
            for s in self.hosted
            if not (
                s.circuit_name == circuit_name
                and (service_id is None or s.service_id == service_id)
            )
        ]
        return before - len(self.hosted)

    def fail(self) -> list[HostedService]:
        """Mark the node down; return the services that must be evacuated."""
        self.alive = False
        orphans = self.hosted
        self.hosted = []
        return orphans

    def recover(self) -> None:
        """Bring the node back up (empty-handed)."""
        self.alive = True
