"""Decentralized service directory for multi-query reuse (§3.4).

"For each unpinned service in a circuit, one implementation could use
the Hilbert DHT to look up the closest n nodes that may already be
running the same service.  This effectively searches around the
hyper-sphere surrounding each unpinned service."

Deployed services are published into the same Hilbert-keyed Chord ring
as node coordinates, under the *host's* cost-space coordinate, together
with their reuse key (service kind + producer set).  A reuse lookup
routes to the query coordinate's key and scans the ring neighborhood,
returning in-radius services — no global registry required.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.chord import ChordRing, hash_to_id
from repro.dht.hilbert import HilbertMapper

__all__ = ["ServiceAdvertisement", "ServiceDirectory"]


@dataclass(frozen=True)
class ServiceAdvertisement:
    """A published, reusable service instance.

    Attributes:
        circuit_name: owning circuit.
        service_id: id within the circuit.
        node: physical host.
        reuse_key: hashable service identity (kind, producers).
        coordinate: the host's full cost-space coordinate at publish
            time.
        output_rate: rate of the stream the service produces.
    """

    circuit_name: str
    service_id: str
    node: int
    reuse_key: tuple
    coordinate: tuple[float, ...]
    output_rate: float

    def as_array(self) -> np.ndarray:
        return np.asarray(self.coordinate, dtype=float)


class ServiceDirectory:
    """Hilbert/Chord-backed directory of running services."""

    def __init__(
        self,
        mapper: HilbertMapper,
        ring: ChordRing | None = None,
        ring_size: int = 64,
    ):
        self.mapper = mapper
        id_bits = mapper.key_bits + 16
        if ring is None:
            ring = ChordRing(id_bits=id_bits)
            for i in range(ring_size):
                ring.join(name=f"dir-node-{i}")
        elif ring.id_bits < mapper.key_bits:
            raise ValueError("ring identifier space too small for directory keys")
        self.ring = ring
        self._keys: dict[tuple[str, str], int] = {}
        self.lookups = 0
        self.lookup_hops = 0

    def _storage_key(self, ad: ServiceAdvertisement) -> int:
        base = self.mapper.key_for(ad.as_array())
        spare = self.ring.id_bits - self.mapper.key_bits
        salt = hash_to_id(f"{ad.circuit_name}/{ad.service_id}", spare)
        return (base << spare) | salt

    # -- publication -------------------------------------------------------

    def publish(self, ad: ServiceAdvertisement) -> int:
        """Advertise a running service; returns its directory key."""
        handle = (ad.circuit_name, ad.service_id)
        if handle in self._keys:
            self.withdraw(ad.circuit_name, ad.service_id)
        key = self._storage_key(ad)
        self.ring.put(key, ad)
        self._keys[handle] = key
        return key

    def withdraw(self, circuit_name: str, service_id: str | None = None) -> int:
        """Remove one service's ad, or all of a circuit's; returns count."""
        removed = 0
        handles = [
            h
            for h in list(self._keys)
            if h[0] == circuit_name and (service_id is None or h[1] == service_id)
        ]
        for handle in handles:
            key = self._keys.pop(handle)
            owner = self.ring.lookup(key).owner
            self.ring.node(owner).store.pop(key, None)
            removed += 1
        return removed

    def __len__(self) -> int:
        return len(self._keys)

    # -- search ------------------------------------------------------------

    def search(
        self,
        coordinate: np.ndarray | list[float],
        reuse_key: tuple,
        radius: float,
        scan_width: int = 16,
    ) -> tuple[list[ServiceAdvertisement], int]:
        """Services matching ``reuse_key`` within ``radius`` of a point.

        Routes one Chord lookup to the coordinate's Hilbert key, then
        scans ``scan_width`` advertisements in each ring direction.

        Returns:
            (matching ads sorted by distance, ads examined in-radius) —
            the second number is the optimizer-work metric of Figure 4.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        point = np.asarray(coordinate, dtype=float)
        spare = self.ring.id_bits - self.mapper.key_bits
        key = self.mapper.key_for(point) << spare
        route = self.ring.lookup(key)
        self.lookups += 1
        self.lookup_hops += route.hops

        collected: dict[tuple[str, str], ServiceAdvertisement] = {}
        for direction in ("successor", "predecessor"):
            node_id = route.owner
            gathered = 0
            visited = 0
            while gathered < scan_width and visited < len(self.ring):
                node = self.ring.node(node_id)
                stored = sorted(node.store.items())
                if direction == "predecessor":
                    stored = list(reversed(stored))
                for _, value in stored:
                    if isinstance(value, ServiceAdvertisement):
                        handle = (value.circuit_name, value.service_id)
                        if handle not in collected:
                            collected[handle] = value
                            gathered += 1
                        if gathered >= scan_width:
                            break
                node_id = getattr(node, direction)
                visited += 1

        in_radius = [
            ad
            for ad in collected.values()
            if float(np.linalg.norm(ad.as_array() - point)) <= radius
        ]
        matches = sorted(
            (ad for ad in in_radius if ad.reuse_key == reuse_key),
            key=lambda ad: float(np.linalg.norm(ad.as_array() - point)),
        )
        return matches, len(in_radius)
