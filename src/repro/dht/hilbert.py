"""n-dimensional Hilbert space-filling curve.

The paper's physical-mapping catalog stores each node's cost-space
coordinate in a DHT keyed by a one-dimensional Hilbert index (§3.2,
citing Sagan and Andrzejak & Xu): the Hilbert curve preserves locality,
so nodes that are close in the cost space receive nearby DHT keys and a
ring-neighborhood scan around a query key finds spatially-close nodes.

The implementation follows John Skilling's "Programming the Hilbert
curve" (AIP Conf. Proc. 707, 2004): a pair of in-place transforms
between axis coordinates and the "transposed" Hilbert representation,
valid for any number of dimensions and bits of precision.  A Morton
(Z-order) encoder is included as the locality baseline for experiment
E10.

Performance architecture (struct-of-arrays)
-------------------------------------------

The per-key integer transforms are retained as the scalar references;
the ``*_batch`` variants run the same bit-twiddling over whole
``(m, dims)`` ``uint64`` arrays (loops only over ``bits`` and ``dims``,
never over keys), valid whenever ``bits * dims <= 64`` — every catalog
configuration in this library.  :class:`HilbertMapper` routes both its
batched and single-key APIs through them, so one
``tests/property/test_vectorized_equivalence.py`` round-trip pins batch
and scalar to exact integer equality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "hilbert_encode",
    "hilbert_decode",
    "morton_encode",
    "morton_decode",
    "hilbert_encode_batch",
    "hilbert_decode_batch",
    "morton_encode_batch",
    "morton_decode_batch",
    "HilbertMapper",
]


def _validate(bits: int, dims: int) -> None:
    if bits < 1:
        raise ValueError("bits per dimension must be >= 1")
    if dims < 1:
        raise ValueError("dimensions must be >= 1")


def _axes_to_transpose(coords: list[int], bits: int, dims: int) -> list[int]:
    """Convert axis coordinates to Skilling's transposed Hilbert form."""
    x = coords[:]
    m = 1 << (bits - 1)

    # Inverse undo excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(dims):
            if x[i] & q:
                x[0] ^= p  # invert
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, dims):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[dims - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dims):
        x[i] ^= t
    return x


def _transpose_to_axes(x: list[int], bits: int, dims: int) -> list[int]:
    """Convert Skilling's transposed Hilbert form back to axis coordinates."""
    coords = x[:]
    n = 2 << (bits - 1)

    # Gray decode by H ^ (H/2).
    t = coords[dims - 1] >> 1
    for i in range(dims - 1, 0, -1):
        coords[i] ^= coords[i - 1]
    coords[0] ^= t

    # Undo excess work.
    q = 2
    while q != n:
        p = q - 1
        for i in range(dims - 1, -1, -1):
            if coords[i] & q:
                coords[0] ^= p
            else:
                t = (coords[0] ^ coords[i]) & p
                coords[0] ^= t
                coords[i] ^= t
        q <<= 1
    return coords


def _transpose_to_index(x: list[int], bits: int, dims: int) -> int:
    """Interleave the transposed form into a single Hilbert integer."""
    index = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(dims):
            index = (index << 1) | ((x[i] >> bit) & 1)
    return index


def _index_to_transpose(index: int, bits: int, dims: int) -> list[int]:
    """De-interleave a Hilbert integer into the transposed form."""
    x = [0] * dims
    position = bits * dims - 1
    for bit in range(bits - 1, -1, -1):
        for i in range(dims):
            x[i] |= ((index >> position) & 1) << bit
            position -= 1
    return x


def hilbert_encode(coords: tuple[int, ...] | list[int], bits: int) -> int:
    """Map integer axis coordinates to their Hilbert curve index.

    Args:
        coords: one non-negative integer per dimension, each < 2**bits.
        bits: precision (bits per dimension).

    Returns:
        The Hilbert index in ``[0, 2**(bits*len(coords)))``.
    """
    dims = len(coords)
    _validate(bits, dims)
    limit = 1 << bits
    for c in coords:
        if not 0 <= c < limit:
            raise ValueError(f"coordinate {c} outside [0, {limit})")
    transposed = _axes_to_transpose(list(coords), bits, dims)
    return _transpose_to_index(transposed, bits, dims)


def hilbert_decode(index: int, bits: int, dims: int) -> tuple[int, ...]:
    """Inverse of :func:`hilbert_encode`."""
    _validate(bits, dims)
    if not 0 <= index < (1 << (bits * dims)):
        raise ValueError(f"index {index} outside curve range")
    transposed = _index_to_transpose(index, bits, dims)
    return tuple(_transpose_to_axes(transposed, bits, dims))


def morton_encode(coords: tuple[int, ...] | list[int], bits: int) -> int:
    """Z-order (Morton) interleaving — the locality baseline for E10."""
    dims = len(coords)
    _validate(bits, dims)
    limit = 1 << bits
    index = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(dims):
            c = coords[i]
            if not 0 <= c < limit:
                raise ValueError(f"coordinate {c} outside [0, {limit})")
            index = (index << 1) | ((c >> bit) & 1)
    return index


def morton_decode(index: int, bits: int, dims: int) -> tuple[int, ...]:
    """Inverse of :func:`morton_encode`."""
    _validate(bits, dims)
    if not 0 <= index < (1 << (bits * dims)):
        raise ValueError(f"index {index} outside curve range")
    coords = [0] * dims
    position = bits * dims - 1
    for bit in range(bits - 1, -1, -1):
        for i in range(dims):
            coords[i] |= ((index >> position) & 1) << bit
            position -= 1
    return tuple(coords)


# -- batched (m, dims) uint64 kernels -------------------------------------


def _validate_batch(bits: int, dims: int) -> None:
    _validate(bits, dims)
    if bits * dims > 64:
        raise ValueError(
            f"batched curve kernels need bits*dims <= 64, got {bits * dims}"
        )


def _check_coords_batch(coords: np.ndarray, bits: int) -> np.ndarray:
    if coords.ndim != 2:
        raise ValueError(f"coords must be (m, dims), got shape {coords.shape}")
    limit = 1 << bits
    if coords.size and (coords.min() < 0 or coords.max() >= limit):
        raise ValueError(f"coordinates outside [0, {limit})")
    return coords.astype(np.uint64)


def _interleave(x: np.ndarray, bits: int) -> np.ndarray:
    """Bit-interleave (m, dims) uint64 columns into (m,) indices."""
    m, dims = x.shape
    one = np.uint64(1)
    index = np.zeros(m, dtype=np.uint64)
    for bit in range(bits - 1, -1, -1):
        shift = np.uint64(bit)
        for i in range(dims):
            index = (index << one) | ((x[:, i] >> shift) & one)
    return index


def _deinterleave(index: np.ndarray, bits: int, dims: int) -> np.ndarray:
    """Inverse of :func:`_interleave`: (m,) indices to (m, dims) columns."""
    index = np.asarray(index, dtype=np.uint64)
    if index.ndim != 1:
        raise ValueError("indices must be a 1-d array")
    total = bits * dims
    if total < 64 and index.size and int(index.max()) >= (1 << total):
        raise ValueError("index outside curve range")
    one = np.uint64(1)
    x = np.zeros((index.shape[0], dims), dtype=np.uint64)
    position = total - 1
    for bit in range(bits - 1, -1, -1):
        for i in range(dims):
            x[:, i] |= ((index >> np.uint64(position)) & one) << np.uint64(bit)
            position -= 1
    return x


def hilbert_encode_batch(coords: np.ndarray, bits: int) -> np.ndarray:
    """Batched :func:`hilbert_encode`: ``(m, dims)`` ints to ``(m,)`` keys.

    Runs Skilling's transform with vectorized bit-twiddling over all
    rows at once; loops only over ``bits`` and ``dims``.  Requires
    ``bits * dims <= 64`` (``uint64`` key space).
    """
    coords = np.asarray(coords)
    _validate_batch(bits, coords.shape[1] if coords.ndim == 2 else 0)
    x = _check_coords_batch(coords, bits).copy()
    m, dims = x.shape
    zero = np.uint64(0)

    # Inverse undo excess work.
    q = 1 << (bits - 1)
    while q > 1:
        p = np.uint64(q - 1)
        uq = np.uint64(q)
        for i in range(dims):
            high = (x[:, i] & uq) != 0
            t = np.where(high, zero, (x[:, 0] ^ x[:, i]) & p)
            x[:, 0] = np.where(high, x[:, 0] ^ p, x[:, 0] ^ t)
            x[:, i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, dims):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(m, dtype=np.uint64)
    q = 1 << (bits - 1)
    while q > 1:
        mask = (x[:, dims - 1] & np.uint64(q)) != 0
        t = np.where(mask, t ^ np.uint64(q - 1), t)
        q >>= 1
    x ^= t[:, None]
    return _interleave(x, bits)


def hilbert_decode_batch(indices: np.ndarray, bits: int, dims: int) -> np.ndarray:
    """Batched :func:`hilbert_decode`: ``(m,)`` keys to ``(m, dims)`` ints."""
    _validate_batch(bits, dims)
    x = _deinterleave(indices, bits, dims)
    zero = np.uint64(0)

    # Gray decode by H ^ (H/2).
    t = x[:, dims - 1] >> np.uint64(1)
    for i in range(dims - 1, 0, -1):
        x[:, i] ^= x[:, i - 1]
    x[:, 0] ^= t

    # Undo excess work.
    n = 2 << (bits - 1)
    q = 2
    while q != n:
        p = np.uint64(q - 1)
        uq = np.uint64(q)
        for i in range(dims - 1, -1, -1):
            high = (x[:, i] & uq) != 0
            t = np.where(high, zero, (x[:, 0] ^ x[:, i]) & p)
            x[:, 0] = np.where(high, x[:, 0] ^ p, x[:, 0] ^ t)
            x[:, i] ^= t
        q <<= 1
    return x


def morton_encode_batch(coords: np.ndarray, bits: int) -> np.ndarray:
    """Batched :func:`morton_encode` (the locality baseline for E10)."""
    coords = np.asarray(coords)
    _validate_batch(bits, coords.shape[1] if coords.ndim == 2 else 0)
    return _interleave(_check_coords_batch(coords, bits), bits)


def morton_decode_batch(indices: np.ndarray, bits: int, dims: int) -> np.ndarray:
    """Batched :func:`morton_decode`."""
    _validate_batch(bits, dims)
    return _deinterleave(indices, bits, dims)


@dataclass
class HilbertMapper:
    """Maps continuous cost-space coordinates to Hilbert DHT keys.

    Continuous coordinates in a known bounding box are quantized onto a
    ``2**bits`` grid per dimension and encoded with the Hilbert curve.
    The resulting integer is the DHT key under which a node publishes
    itself (see :mod:`repro.dht.catalog`).

    Attributes:
        lows: per-dimension lower bounds of the bounding box.
        highs: per-dimension upper bounds.
        bits: grid precision per dimension.
    """

    lows: tuple[float, ...]
    highs: tuple[float, ...]
    bits: int = 10

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise ValueError("lows and highs must have equal length")
        _validate(self.bits, len(self.lows))
        for low, high in zip(self.lows, self.highs):
            if not low < high:
                raise ValueError("each bound pair must satisfy low < high")

    @property
    def dims(self) -> int:
        return len(self.lows)

    @property
    def key_bits(self) -> int:
        """Total bits of the Hilbert key (= DHT identifier width needed)."""
        return self.bits * self.dims

    @classmethod
    def fit(cls, points: np.ndarray, bits: int = 10, margin: float = 0.05) -> "HilbertMapper":
        """Build a mapper whose box covers ``points`` with a safety margin."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        lows = points.min(axis=0)
        highs = points.max(axis=0)
        span = np.maximum(highs - lows, 1e-9)
        lows = lows - margin * span
        highs = highs + margin * span
        return cls(tuple(float(v) for v in lows), tuple(float(v) for v in highs), bits)

    def quantize(self, point: np.ndarray | list[float]) -> tuple[int, ...]:
        """Clamp and quantize a continuous point onto the integer grid."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dims,):
            raise ValueError(f"expected {self.dims}-d point, got shape {point.shape}")
        cells = (1 << self.bits) - 1
        out = []
        for value, low, high in zip(point, self.lows, self.highs):
            frac = (value - low) / (high - low)
            frac = min(max(frac, 0.0), 1.0)
            out.append(int(round(frac * cells)))
        return tuple(out)

    def quantize_batch(self, points: np.ndarray) -> np.ndarray:
        """Batched :meth:`quantize`: ``(m, dims)`` floats to grid cells.

        Uses round-half-even like the scalar path, so both agree
        exactly on every input.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dims:
            raise ValueError(
                f"expected (m, {self.dims}) points, got shape {points.shape}"
            )
        cells = (1 << self.bits) - 1
        lows = np.asarray(self.lows)
        highs = np.asarray(self.highs)
        frac = np.clip((points - lows) / (highs - lows), 0.0, 1.0)
        return np.round(frac * cells).astype(np.int64)

    def dequantize(self, cell: tuple[int, ...]) -> np.ndarray:
        """Map grid cell indices back to cell-center continuous values."""
        if len(cell) != self.dims:
            raise ValueError("wrong dimensionality")
        cells = (1 << self.bits) - 1
        return np.array(
            [
                low + (c / cells) * (high - low)
                for c, low, high in zip(cell, self.lows, self.highs)
            ]
        )

    def key_for(self, point: np.ndarray | list[float]) -> int:
        """The Hilbert DHT key of a continuous cost-space point."""
        if self.key_bits <= 64:
            cells = np.asarray(self.quantize(point), dtype=np.int64)
            return int(hilbert_encode_batch(cells[None, :], self.bits)[0])
        return hilbert_encode(self.quantize(point), self.bits)

    def keys_for(self, points: np.ndarray) -> np.ndarray | list[int]:
        """Batched :meth:`key_for`: one vectorized quantize + encode pass.

        Returns a ``(m,)`` ``uint64`` array when the key fits 64 bits,
        otherwise a list of Python ints from the scalar encoder.
        """
        cells = self.quantize_batch(points)
        if self.key_bits <= 64:
            return hilbert_encode_batch(cells, self.bits)
        return [hilbert_encode(tuple(int(c) for c in row), self.bits) for row in cells]

    def point_for(self, key: int) -> np.ndarray:
        """Approximate continuous point at the center of a key's cell."""
        return self.dequantize(hilbert_decode(key, self.bits, self.dims))

    def points_for(self, keys: np.ndarray) -> np.ndarray:
        """Batched :meth:`point_for`: ``(m,)`` keys to cell-center points."""
        if self.key_bits <= 64:
            cells = hilbert_decode_batch(np.asarray(keys, dtype=np.uint64), self.bits, self.dims)
        else:
            cells = np.array(
                [hilbert_decode(int(k), self.bits, self.dims) for k in keys]
            )
        cell_count = (1 << self.bits) - 1
        lows = np.asarray(self.lows)
        highs = np.asarray(self.highs)
        return lows + (cells.astype(float) / cell_count) * (highs - lows)
