"""Chord distributed hash table (simulation).

The paper's decentralized catalog (§3.2) stores node coordinates in a
DHT [Stoica et al., SIGCOMM'01] keyed by Hilbert indices, so that a
coordinate lookup "returns the node with the closest existing
coordinate in the system".  This module implements the Chord protocol
structure — consistent-hashing ring, successor pointers, finger tables,
O(log n) iterative lookup — as an in-process simulation that counts
routing hops, which is what the catalog experiments measure.

The simulation is *structurally* faithful (lookups route only through
finger/successor pointers) but runs in one process: joins rebuild
affected state directly rather than via background stabilization, which
keeps experiments deterministic.

Performance architecture (struct-of-arrays)
-------------------------------------------

Ground-truth successor resolution is answered by ``np.searchsorted``
over a cached sorted ring-id array: :meth:`ChordRing.owners_of` maps a
whole key batch in one pass, and :meth:`_rebuild_pointers` computes
every node's finger table from a single ``(n, id_bits)`` vectorized
lookup (identifier spaces beyond 62 bits fall back to the retained
bisect path, ``_owner_of``, which also remains the reference for
``verify_invariants``).  Routing itself (:meth:`lookup`) intentionally
stays a pointer-chasing loop — counted hops are the experiment metric.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ChordNode", "ChordRing", "LookupResult", "hash_to_id"]


def hash_to_id(value: str | int, id_bits: int) -> int:
    """Hash an arbitrary value into the ``id_bits``-bit identifier space."""
    digest = hashlib.sha1(str(value).encode()).digest()
    return int.from_bytes(digest, "big") % (1 << id_bits)


def _in_half_open(x: int, start: int, end: int, modulus: int) -> bool:
    """True if ``x`` lies in the circular interval ``(start, end]``."""
    x %= modulus
    start %= modulus
    end %= modulus
    if start < end:
        return start < x <= end
    if start > end:
        return x > start or x <= end
    return True  # full circle


def _in_open(x: int, start: int, end: int, modulus: int) -> bool:
    """True if ``x`` lies in the circular open interval ``(start, end)``."""
    x %= modulus
    start %= modulus
    end %= modulus
    if start < end:
        return start < x < end
    if start > end:
        return x > start or x < end
    return x != start  # full circle minus the shared endpoint


@dataclass
class ChordNode:
    """A Chord participant: identifier, finger table, local key store."""

    node_id: int
    fingers: list[int] = field(default_factory=list)
    successor: int = -1
    predecessor: int = -1
    store: dict[int, object] = field(default_factory=dict)

    def closest_preceding(self, key: int, id_bits: int) -> int:
        """Finger that most closely precedes ``key`` (Chord routing step).

        Standard Chord rule: the highest finger in the *open* interval
        ``(self, key)``; if none qualifies, the successor is the next
        hop (it owns keys just past this node).
        """
        modulus = 1 << id_bits
        for finger in reversed(self.fingers):
            if _in_open(finger, self.node_id, key, modulus):
                return finger
        return self.successor


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a Chord lookup.

    Attributes:
        key: the looked-up identifier.
        owner: node id responsible for the key (its successor).
        hops: number of routing hops taken (0 if the origin owns it).
        path: sequence of node ids visited, origin first.
    """

    key: int
    owner: int
    hops: int
    path: tuple[int, ...]


class ChordRing:
    """A complete Chord ring with correct fingers and hop-counted lookups."""

    def __init__(self, id_bits: int = 32):
        if id_bits < 2:
            raise ValueError("id_bits must be >= 2")
        self.id_bits = id_bits
        self.modulus = 1 << id_bits
        self._nodes: dict[int, ChordNode] = {}
        self._sorted_ids: list[int] = []
        self._ids_array: np.ndarray | None = None  # int64 cache of sorted ids

    # -- membership ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_ids(self) -> list[int]:
        """Sorted list of live node identifiers."""
        return self._sorted_ids[:]

    def node(self, node_id: int) -> ChordNode:
        """The node object for ``node_id``."""
        return self._nodes[node_id]

    def join(self, node_id: int | None = None, name: str | int | None = None) -> ChordNode:
        """Add a node; by id or by hashing ``name`` into the id space.

        Keys in the affected region are transferred to the new node, and
        ring pointers/fingers of all nodes are refreshed (simulating a
        completed stabilization round).
        """
        if node_id is None:
            if name is None:
                raise ValueError("provide node_id or name")
            node_id = hash_to_id(name, self.id_bits)
        node_id %= self.modulus
        if node_id in self._nodes:
            raise ValueError(f"node id {node_id} already present")

        new_node = ChordNode(node_id=node_id)
        self._nodes[node_id] = new_node
        bisect.insort(self._sorted_ids, node_id)
        self._rebuild_pointers()

        # Transfer keys this node is now responsible for.
        successor = self._nodes[new_node.successor]
        if successor is not new_node:
            moving = [
                key
                for key in successor.store
                if self._owner_of(key) == node_id
            ]
            for key in moving:
                new_node.store[key] = successor.store.pop(key)
        return new_node

    def leave(self, node_id: int) -> None:
        """Remove a node, handing its keys to its successor."""
        if node_id not in self._nodes:
            raise KeyError(f"no node {node_id}")
        if len(self._nodes) == 1:
            raise ValueError("cannot remove the last node")
        departing = self._nodes.pop(node_id)
        self._sorted_ids.remove(node_id)
        self._rebuild_pointers()
        heir = self._nodes[self._owner_of(node_id)]
        heir.store.update(departing.store)

    def _rebuild_pointers(self) -> None:
        """Recompute successor/predecessor/fingers for every node.

        Finger targets for *all* nodes are resolved with one batched
        :meth:`owners_of` pass when the identifier space fits int64.
        """
        ids = self._sorted_ids
        n = len(ids)
        self._ids_array = (
            np.asarray(ids, dtype=np.int64) if self.id_bits <= 62 else None
        )
        if self._ids_array is not None:
            ids_arr = self._ids_array
            powers = np.left_shift(
                np.int64(1), np.arange(self.id_bits, dtype=np.int64)
            )
            targets = (ids_arr[:, None] + powers[None, :]) % self.modulus
            fingers = self.owners_of(targets.ravel()).reshape(n, self.id_bits)
        else:
            fingers = None
        for rank, node_id in enumerate(ids):
            node = self._nodes[node_id]
            node.successor = ids[(rank + 1) % n]
            node.predecessor = ids[(rank - 1) % n]
            if fingers is not None:
                node.fingers = [int(f) for f in fingers[rank]]
            else:
                node.fingers = [
                    self._owner_of((node_id + (1 << k)) % self.modulus)
                    for k in range(self.id_bits)
                ]

    def owners_of(self, keys: np.ndarray) -> np.ndarray:
        """Batched ground-truth owners: one ``np.searchsorted`` pass.

        Args:
            keys: identifier array (already reduced mod ``modulus``, or
                reducible — the method reduces defensively).

        Returns:
            ``(m,)`` int64 array of owning node ids.
        """
        if not self._sorted_ids:
            raise ValueError("empty ring")
        if self.id_bits > 62:
            return np.array(
                [self._owner_of(int(k)) for k in np.asarray(keys).ravel()],
                dtype=object,
            )
        if self._ids_array is None or len(self._ids_array) != len(self._sorted_ids):
            self._ids_array = np.asarray(self._sorted_ids, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.int64) % self.modulus
        ranks = np.searchsorted(self._ids_array, keys, side="left")
        ranks[ranks == len(self._ids_array)] = 0
        return self._ids_array[ranks]

    def _owner_of(self, key: int) -> int:
        """Ground-truth owner: first node id >= key (bisect reference)."""
        if not self._sorted_ids:
            raise ValueError("empty ring")
        key %= self.modulus
        rank = bisect.bisect_left(self._sorted_ids, key)
        if rank == len(self._sorted_ids):
            rank = 0
        return self._sorted_ids[rank]

    # -- routing ---------------------------------------------------------

    def lookup(self, key: int, origin: int | None = None) -> LookupResult:
        """Route to the owner of ``key`` through finger tables.

        Args:
            key: identifier to resolve.
            origin: node the lookup starts from; defaults to the lowest
                node id (any node works — hops are what vary).
        """
        if not self._nodes:
            raise ValueError("empty ring")
        key %= self.modulus
        if origin is None:
            origin = self._sorted_ids[0]
        if origin not in self._nodes:
            raise KeyError(f"origin {origin} not in ring")

        current = self._nodes[origin]
        path = [current.node_id]
        hops = 0
        limit = 2 * self.id_bits + len(self._nodes)
        while not _in_half_open(
            key, current.predecessor, current.node_id, self.modulus
        ):
            next_id = current.closest_preceding(key, self.id_bits)
            if next_id == current.node_id:
                next_id = current.successor
            current = self._nodes[next_id]
            path.append(next_id)
            hops += 1
            if hops > limit:
                raise RuntimeError("lookup failed to converge; broken ring state")
        return LookupResult(key=key, owner=current.node_id, hops=hops, path=tuple(path))

    # -- storage ---------------------------------------------------------

    def put(self, key: int, value: object, origin: int | None = None) -> LookupResult:
        """Store ``value`` at the owner of ``key``; returns the route taken."""
        result = self.lookup(key, origin)
        self._nodes[result.owner].store[key % self.modulus] = value
        return result

    def get(self, key: int, origin: int | None = None) -> tuple[object | None, LookupResult]:
        """Fetch the value stored under ``key`` (or None) plus the route."""
        result = self.lookup(key, origin)
        return self._nodes[result.owner].store.get(key % self.modulus), result

    def stored_keys(self) -> dict[int, int]:
        """Map of key -> owning node id across the whole ring."""
        out: dict[int, int] = {}
        for node in self._nodes.values():
            for key in node.store:
                out[key] = node.node_id
        return out

    def verify_invariants(self) -> None:
        """Assert ring-structure invariants (used by property tests)."""
        ids = self._sorted_ids
        n = len(ids)
        assert sorted(self._nodes) == ids
        for rank, node_id in enumerate(ids):
            node = self._nodes[node_id]
            assert node.successor == ids[(rank + 1) % n]
            assert node.predecessor == ids[(rank - 1) % n]
            for k, finger in enumerate(node.fingers):
                assert finger == self._owner_of((node_id + (1 << k)) % self.modulus)
            for key in node.store:
                assert self._owner_of(key) == node_id, "key stored at wrong owner"
