"""Decentralized catalog substrate: Hilbert curves + Chord DHT.

Implements the paper's coordinate catalog (§3.2): nodes publish their
cost-space coordinates under Hilbert-curve keys in a Chord ring, and
nearest-coordinate queries resolve with O(log n) routing plus a short
ring-neighborhood scan.
"""

from repro.dht.catalog import CatalogEntry, CatalogQueryStats, CoordinateCatalog
from repro.dht.chord import ChordNode, ChordRing, LookupResult, hash_to_id
from repro.dht.directory import ServiceAdvertisement, ServiceDirectory
from repro.dht.hilbert import (
    HilbertMapper,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
)

__all__ = [
    "CatalogEntry",
    "CatalogQueryStats",
    "CoordinateCatalog",
    "ChordNode",
    "ChordRing",
    "LookupResult",
    "hash_to_id",
    "ServiceAdvertisement",
    "ServiceDirectory",
    "HilbertMapper",
    "hilbert_decode",
    "hilbert_encode",
    "morton_decode",
    "morton_encode",
]
