"""Decentralized coordinate catalog: Hilbert keys over a Chord ring.

This is the physical-mapping backend of §3.2: every SBON node publishes
its cost-space coordinate into a DHT after transforming it to a
one-dimensional key with a Hilbert curve; a lookup of a desired
coordinate then returns (approximately) the node with the closest
existing coordinate.

Because the Hilbert curve only *approximately* preserves locality, a
single key lookup can miss the true nearest node.  The catalog
therefore scans a small ring neighborhood around the query key
(``scan_width`` entries in each direction) and ranks the collected
candidates by true distance — the standard technique for
space-filling-curve indexes.  The gap between this answer and the
exhaustive nearest node is the *mapping error* studied in experiments
E3/E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dht.chord import ChordRing, hash_to_id
from repro.dht.hilbert import HilbertMapper

__all__ = ["CatalogEntry", "CoordinateCatalog", "CatalogQueryStats"]

DistanceFn = Callable[[np.ndarray, np.ndarray], float]


def _euclidean(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.linalg.norm(a - b))


@dataclass(frozen=True)
class CatalogEntry:
    """A published (physical node, cost-space coordinate) pair."""

    physical_node: int
    coordinate: tuple[float, ...]

    def as_array(self) -> np.ndarray:
        return np.asarray(self.coordinate, dtype=float)


@dataclass
class CatalogQueryStats:
    """Bookkeeping for one nearest-node query.

    Attributes:
        dht_hops: Chord routing hops for the initial key lookup.
        ring_entries_scanned: catalog entries inspected in the
            neighborhood scan (a proxy for extra one-hop messages).
        candidates: number of distinct published nodes considered.
    """

    dht_hops: int = 0
    ring_entries_scanned: int = 0
    candidates: int = 0


class CoordinateCatalog:
    """Publish/query cost-space coordinates through a simulated Chord DHT.

    Args:
        mapper: quantizer from continuous coordinates to Hilbert keys.
        ring: an existing Chord ring to use; if None, a fresh ring is
            created and ``ring_size`` virtual nodes are joined (hashed
            ids), modelling a deployed DHT substrate.
        ring_size: number of DHT participants when creating a ring.
        distance: metric used to rank candidates; Euclidean by default
            (the cost-space distance in the full coordinate space).
    """

    def __init__(
        self,
        mapper: HilbertMapper,
        ring: ChordRing | None = None,
        ring_size: int = 64,
        distance: DistanceFn = _euclidean,
    ):
        self.mapper = mapper
        self.distance = distance
        # Reserve low-order salt bits so nodes sharing a quantization
        # cell still get distinct store keys.
        id_bits = mapper.key_bits + 16
        if ring is None:
            ring = ChordRing(id_bits=id_bits)
            for i in range(ring_size):
                ring.join(name=f"dht-node-{i}")
        else:
            if ring.id_bits < mapper.key_bits:
                raise ValueError(
                    "ring identifier space too small for the Hilbert keys"
                )
            if len(ring) == 0:
                raise ValueError("ring must have at least one node")
        self.ring = ring
        self._published: dict[int, CatalogEntry] = {}
        self._keys: dict[int, int] = {}

    # -- publishing ------------------------------------------------------

    def publish(self, physical_node: int, coordinate: np.ndarray | list[float]) -> int:
        """Publish (or refresh) a node's coordinate; returns its DHT key.

        Keys are salted with the physical node id so that two nodes in
        the same quantization cell do not collide in the store.
        """
        coordinate = np.asarray(coordinate, dtype=float)
        key = self._salted_key(physical_node, coordinate)
        entry = CatalogEntry(physical_node, tuple(float(v) for v in coordinate))
        previous = self._published.get(physical_node)
        if previous is not None:
            self.withdraw(physical_node)
        self.ring.put(key, entry)
        self._published[physical_node] = entry
        self._keys[physical_node] = key
        return key

    def publish_batch(
        self,
        physical_nodes: list[int],
        coordinates: np.ndarray,
        route: bool = False,
    ) -> list[int]:
        """Publish many coordinates at once; returns their DHT keys.

        All Hilbert keys are computed in one batched encode pass
        (:meth:`HilbertMapper.keys_for`).  With ``route=False`` (the
        default) entries are stored directly at their ground-truth
        owners via one ``np.searchsorted`` pass — bulk catalog builds
        do not need per-entry routing hops; pass ``route=True`` to go
        through hop-counted :meth:`ChordRing.put` like :meth:`publish`.
        """
        coordinates = np.asarray(coordinates, dtype=float)
        if coordinates.ndim != 2 or coordinates.shape[0] != len(physical_nodes):
            raise ValueError("coordinates must be (len(physical_nodes), dims)")
        base_keys = self.mapper.keys_for(coordinates)
        spare_bits = self.ring.id_bits - self.mapper.key_bits
        keys = []
        for node, base in zip(physical_nodes, base_keys):
            base = int(base)
            if spare_bits > 0:
                keys.append((base << spare_bits) | hash_to_id(node, spare_bits))
            else:
                keys.append(base)
        for node in physical_nodes:
            if node in self._published:
                self.withdraw(node)
        if route or self.ring.id_bits > 62:
            owners = [self.ring.lookup(key).owner for key in keys]
        else:
            owners = [int(o) for o in self.ring.owners_of(np.asarray(keys))]
        for node, coordinate, key, owner in zip(
            physical_nodes, coordinates, keys, owners
        ):
            entry = CatalogEntry(node, tuple(float(v) for v in coordinate))
            self.ring.node(owner).store[key % self.ring.modulus] = entry
            self._published[node] = entry
            self._keys[node] = key
        return keys

    def withdraw(self, physical_node: int) -> None:
        """Remove a node's published coordinate (e.g., on failure)."""
        if physical_node not in self._published:
            raise KeyError(f"node {physical_node} has not published")
        key = self._keys[physical_node]
        owner = self.ring.lookup(key).owner
        self.ring.node(owner).store.pop(key, None)
        del self._published[physical_node]
        del self._keys[physical_node]

    def _salted_key(self, physical_node: int, coordinate: np.ndarray) -> int:
        base = self.mapper.key_for(coordinate)
        # Shift the Hilbert key into the high bits of the ring id space and
        # salt the low bits, so ring order still follows curve order.
        spare_bits = self.ring.id_bits - self.mapper.key_bits
        if spare_bits <= 0:
            return base
        salt = hash_to_id(physical_node, spare_bits) if spare_bits > 0 else 0
        return (base << spare_bits) | salt

    @property
    def published_nodes(self) -> list[int]:
        """Physical node ids currently published."""
        return sorted(self._published)

    def entry_for(self, physical_node: int) -> CatalogEntry:
        """The published entry of one node."""
        return self._published[physical_node]

    # -- queries ---------------------------------------------------------

    def nearest(
        self,
        coordinate: np.ndarray | list[float],
        scan_width: int = 8,
        exclude: set[int] | None = None,
    ) -> tuple[CatalogEntry | None, CatalogQueryStats]:
        """Find the published node nearest to ``coordinate``.

        Performs one Chord lookup for the query's Hilbert key, then
        scans ``scan_width`` published entries in each ring direction
        and returns the candidate at minimum true distance.

        Args:
            coordinate: the desired cost-space point.
            scan_width: neighborhood half-width (entries per direction).
            exclude: physical node ids to ignore (e.g., failed nodes).

        Returns:
            ``(entry, stats)`` — entry is None if nothing is published.
        """
        entries, stats = self._neighborhood(coordinate, scan_width, exclude)
        if not entries:
            return None, stats
        point = np.asarray(coordinate, dtype=float)
        best = min(entries, key=lambda e: self.distance(point, e.as_array()))
        return best, stats

    def k_nearest(
        self,
        coordinate: np.ndarray | list[float],
        k: int,
        scan_width: int = 8,
        exclude: set[int] | None = None,
    ) -> tuple[list[CatalogEntry], CatalogQueryStats]:
        """The ``k`` published nodes nearest to ``coordinate`` (approx.)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        entries, stats = self._neighborhood(
            coordinate, max(scan_width, k), exclude
        )
        point = np.asarray(coordinate, dtype=float)
        ranked = sorted(entries, key=lambda e: self.distance(point, e.as_array()))
        return ranked[:k], stats

    def within_radius(
        self,
        coordinate: np.ndarray | list[float],
        radius: float,
        scan_width: int = 16,
        exclude: set[int] | None = None,
    ) -> tuple[list[CatalogEntry], CatalogQueryStats]:
        """Published nodes within ``radius`` of ``coordinate`` (approx.).

        This is the hyper-sphere search of §3.4 used to prune
        multi-query optimization: only services hosted on nodes inside
        the ball are considered for reuse.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        entries, stats = self._neighborhood(coordinate, scan_width, exclude)
        point = np.asarray(coordinate, dtype=float)
        hits = [
            e for e in entries if self.distance(point, e.as_array()) <= radius
        ]
        return hits, stats

    def nearest_batch(
        self,
        coordinates: np.ndarray,
        scan_width: int = 8,
        exclude: set[int] | None = None,
    ) -> tuple[list[CatalogEntry | None], list[CatalogQueryStats]]:
        """Batched :meth:`nearest`: one ring walk per distinct owner.

        All Hilbert keys are computed in one batched encode pass, and
        every key still routes through the DHT individually — per-key
        ``dht_hops`` remain the reported metric.  The neighborhood walk,
        however, depends only on ``(owner, scan_width, exclude)``, so
        targets whose lookups land on the same catalog owner share one
        walk instead of repeating it.  Each target then ranks the shared
        candidate list with its own distance, preserving the per-key
        answer exactly, including insertion-order tie-breaking.

        Args:
            coordinates: ``(m, dims)`` array of query points.
            scan_width: neighborhood half-width (entries per direction).
            exclude: physical node ids to ignore.

        Returns:
            ``(entries, stats)`` lists parallel to ``coordinates``;
            ``entries[i]`` is None if nothing is published.
        """
        coordinates = np.asarray(coordinates, dtype=float)
        if coordinates.ndim != 2:
            raise ValueError("coordinates must be an (m, dims) array")
        exclude = exclude or set()
        spare_bits = max(self.ring.id_bits - self.mapper.key_bits, 0)
        base_keys = self.mapper.keys_for(coordinates)
        routes = [self.ring.lookup(int(base) << spare_bits) for base in base_keys]

        scans: dict[int, tuple[list[CatalogEntry], int]] = {}
        for route in routes:
            if route.owner not in scans:
                scans[route.owner] = self._scan_from(
                    route.owner, scan_width, exclude
                )

        results: list[CatalogEntry | None] = []
        stats_list: list[CatalogQueryStats] = []
        for point, route in zip(coordinates, routes):
            entries, scanned = scans[route.owner]
            stats_list.append(
                CatalogQueryStats(
                    dht_hops=route.hops,
                    ring_entries_scanned=scanned,
                    candidates=len(entries),
                )
            )
            if entries:
                results.append(
                    min(entries, key=lambda e: self.distance(point, e.as_array()))
                )
            else:
                results.append(None)
        return results, stats_list

    def _neighborhood(
        self,
        coordinate: np.ndarray | list[float],
        scan_width: int,
        exclude: set[int] | None,
    ) -> tuple[list[CatalogEntry], CatalogQueryStats]:
        """Collect published entries near the query key on the ring."""
        coordinate = np.asarray(coordinate, dtype=float)
        spare_bits = self.ring.id_bits - self.mapper.key_bits
        key = self.mapper.key_for(coordinate) << max(spare_bits, 0)
        route = self.ring.lookup(key)
        stats = CatalogQueryStats(dht_hops=route.hops)
        entries, stats.ring_entries_scanned = self._scan_from(
            route.owner, scan_width, exclude or set()
        )
        stats.candidates = len(entries)
        return entries, stats

    def _scan_from(
        self, owner: int, scan_width: int, exclude: set[int]
    ) -> tuple[list[CatalogEntry], int]:
        """Walk the ring neighborhood of ``owner``, gathering entries.

        The walk is a pure function of ``(owner, scan_width, exclude)``
        and the current store contents — :meth:`nearest_batch` relies on
        this to share one walk across queries landing on the same owner.

        Returns ``(entries, ring_entries_scanned)``.
        """
        collected: dict[int, CatalogEntry] = {}
        scanned = 0

        # Walk successors and predecessors from the owner, gathering
        # published entries until scan_width per direction is reached.
        for direction in ("successor", "predecessor"):
            node_id = owner
            gathered = 0
            visited = 0
            while gathered < scan_width and visited < len(self.ring):
                node = self.ring.node(node_id)
                stored = sorted(node.store.items())
                if direction == "predecessor":
                    stored = list(reversed(stored))
                for _, value in stored:
                    if isinstance(value, CatalogEntry):
                        scanned += 1
                        if value.physical_node not in exclude:
                            if value.physical_node not in collected:
                                collected[value.physical_node] = value
                                gathered += 1
                        if gathered >= scan_width:
                            break
                node_id = getattr(node, direction)
                visited += 1

        return list(collected.values()), scanned

    # -- ground truth ----------------------------------------------------

    def exhaustive_nearest(
        self,
        coordinate: np.ndarray | list[float],
        exclude: set[int] | None = None,
    ) -> CatalogEntry | None:
        """True nearest published node (reference for mapping error)."""
        exclude = exclude or set()
        point = np.asarray(coordinate, dtype=float)
        candidates = [
            e for n, e in self._published.items() if n not in exclude
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: self.distance(point, e.as_array()))
