"""repro — cost-space distributed query optimization for stream overlays.

A from-scratch reproduction of *"A Cost-Space Approach to Distributed
Query Optimization in Stream Based Overlays"* (Shneidman, Pietzuch,
Welsh, Seltzer, Roussopoulos — ICDE 2005), including every substrate
the paper relies on: transit-stub topologies, Vivaldi/landmark network
coordinates, a Hilbert-curve Chord catalog, stream query plan
generation, and a tick-driven SBON simulator.

Quickstart::

    from repro import Overlay, transit_stub_topology
    from repro.workloads import random_query

    topo = transit_stub_topology(seed=1)
    overlay = Overlay.build(topo, vector_dims=2, seed=1)
    query, stats = random_query(overlay.num_nodes, seed=1)
    result = overlay.integrated_optimizer().optimize(query, stats)
    print(result.plan, result.cost.total)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured experiment log.
"""

from repro.core import (
    CatalogMapper,
    Circuit,
    CircuitCost,
    CostCoordinate,
    CostSpace,
    CostSpaceEvaluator,
    CostSpaceSpec,
    ExhaustiveMapper,
    GroundTruthEvaluator,
    IntegratedOptimizer,
    MultiQueryOptimizer,
    OptimizationResult,
    RandomOptimizer,
    Reoptimizer,
    ScalarDimension,
    TwoStepOptimizer,
    build_catalog,
    centroid_placement,
    gradient_descent_placement,
    map_circuit,
    relaxation_placement,
    squared,
)
from repro.engine import CircuitExecutor, ExecutionReport, SourceConfig
from repro.network import (
    LatencyMatrix,
    Topology,
    VivaldiSystem,
    embed_latency_matrix,
    random_geometric_topology,
    transit_stub_topology,
)
from repro.query import (
    Consumer,
    LogicalPlan,
    Producer,
    QuerySpec,
    Statistics,
    enumerate_all_plans,
    top_k_plans,
)
from repro.runtime import DataPlane, RuntimeConfig
from repro.sbon import Overlay, Simulation, SimulationConfig

__version__ = "1.0.0"

__all__ = [
    "CatalogMapper",
    "Circuit",
    "CircuitCost",
    "CostCoordinate",
    "CostSpace",
    "CostSpaceEvaluator",
    "CostSpaceSpec",
    "ExhaustiveMapper",
    "GroundTruthEvaluator",
    "IntegratedOptimizer",
    "MultiQueryOptimizer",
    "OptimizationResult",
    "RandomOptimizer",
    "Reoptimizer",
    "ScalarDimension",
    "TwoStepOptimizer",
    "build_catalog",
    "centroid_placement",
    "gradient_descent_placement",
    "map_circuit",
    "relaxation_placement",
    "squared",
    "CircuitExecutor",
    "ExecutionReport",
    "SourceConfig",
    "LatencyMatrix",
    "Topology",
    "VivaldiSystem",
    "embed_latency_matrix",
    "random_geometric_topology",
    "transit_stub_topology",
    "Consumer",
    "LogicalPlan",
    "Producer",
    "QuerySpec",
    "Statistics",
    "enumerate_all_plans",
    "top_k_plans",
    "DataPlane",
    "RuntimeConfig",
    "Overlay",
    "Simulation",
    "SimulationConfig",
    "__version__",
]
