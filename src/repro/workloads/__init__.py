"""Workloads: random query generation and the paper's figure scenarios."""

from repro.workloads.queries import WorkloadParams, random_query, random_workload
from repro.workloads.scenarios import (
    ChaosScenario,
    CpuHotspotScenario,
    cpu_hotspot_scenario,
    cpu_overload_comparison,
    Figure1Scenario,
    Figure3Scenario,
    Figure4Scenario,
    chaos_scenario,
    figure1_scenario,
    figure2_scenario,
    figure3_scenario,
    figure4_scenario,
    perfect_cost_space,
    planted_latency_matrix,
    TenantChurnScenario,
    tenant_churn_scenario,
)

__all__ = [
    "WorkloadParams",
    "random_query",
    "random_workload",
    "ChaosScenario",
    "chaos_scenario",
    "CpuHotspotScenario",
    "cpu_hotspot_scenario",
    "cpu_overload_comparison",
    "Figure1Scenario",
    "Figure3Scenario",
    "Figure4Scenario",
    "figure1_scenario",
    "figure2_scenario",
    "figure3_scenario",
    "figure4_scenario",
    "perfect_cost_space",
    "planted_latency_matrix",
    "TenantChurnScenario",
    "tenant_churn_scenario",
]
