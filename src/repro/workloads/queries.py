"""Random query workload generation.

Benchmarks sweep over many random query instances; this module is the
single source of those instances so that every experiment draws from
the same distribution.  Given a node population, a workload instance
is: k producers pinned to distinct random nodes with random rates, one
consumer on another random node, and random pairwise selectivities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.selectivity import Statistics

__all__ = ["WorkloadParams", "random_query", "random_workload"]


@dataclass(frozen=True)
class WorkloadParams:
    """Distribution parameters for random queries.

    Attributes:
        num_producers: producers per query.
        rate_bounds: uniform bounds for producer stream rates.
        selectivity_bounds: log-uniform bounds for join selectivities.
        clustered: if True, producers are drawn from a small random
            neighborhood of node indices (models geographically
            correlated sources, which is when plan/placement
            integration matters most); if False, uniform over nodes.
        cluster_span: size of the index window used when clustered.
    """

    num_producers: int = 4
    rate_bounds: tuple[float, float] = (1.0, 20.0)
    selectivity_bounds: tuple[float, float] = (0.01, 0.5)
    clustered: bool = False
    cluster_span: int = 40

    def __post_init__(self) -> None:
        if self.num_producers < 1:
            raise ValueError("num_producers must be >= 1")
        if self.cluster_span < self.num_producers:
            raise ValueError("cluster_span must fit all producers")


def random_query(
    num_nodes: int,
    params: WorkloadParams | None = None,
    name: str = "q",
    seed: int = 0,
) -> tuple[QuerySpec, Statistics]:
    """Draw one random query + matching statistics.

    Producer/consumer nodes are distinct.  Deterministic given seed.
    """
    params = params or WorkloadParams()
    if num_nodes < params.num_producers + 1:
        raise ValueError("not enough nodes for the requested producers + consumer")
    rng = random.Random(seed)

    if params.clustered:
        start = rng.randrange(max(num_nodes - params.cluster_span, 1))
        pool = list(range(start, min(start + params.cluster_span, num_nodes)))
    else:
        pool = list(range(num_nodes))
    producer_nodes = rng.sample(pool, params.num_producers)

    remaining = [n for n in range(num_nodes) if n not in set(producer_nodes)]
    consumer_node = rng.choice(remaining)

    names = [f"{name}.P{i + 1}" for i in range(params.num_producers)]
    stats = Statistics.random(
        names,
        rate_bounds=params.rate_bounds,
        selectivity_bounds=params.selectivity_bounds,
        seed=rng.randrange(1 << 30),
    )
    producers = [
        Producer(name=pname, node=pnode, rate=stats.rate(pname))
        for pname, pnode in zip(names, producer_nodes)
    ]
    query = QuerySpec(
        name=name,
        producers=producers,
        consumer=Consumer(name=f"{name}.C", node=consumer_node),
    )
    return query, stats


def random_workload(
    num_nodes: int,
    num_queries: int,
    params: WorkloadParams | None = None,
    seed: int = 0,
) -> list[tuple[QuerySpec, Statistics]]:
    """Draw ``num_queries`` independent random queries."""
    if num_queries < 0:
        raise ValueError("num_queries must be non-negative")
    rng = random.Random(seed)
    return [
        random_query(
            num_nodes,
            params,
            name=f"q{i}",
            seed=rng.randrange(1 << 30),
        )
        for i in range(num_queries)
    ]
