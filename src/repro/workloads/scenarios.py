"""The paper's figure scenarios, as constructible fixtures.

Each ``figureN_scenario`` builds the exact situation the paper's figure
illustrates, with deterministic geometry, so experiments (and tests)
can check the *qualitative* claim directly:

* Figure 1 — producers clustered in pairs; the network-oblivious plan
  pairs producers across clusters and loses to the integrated choice.
* Figure 2 — 600-node transit-stub topology in a 3-D cost space
  (2 latency dims + squared CPU load), with one overloaded node.
* Figure 3 — one unpinned service between two producers and a consumer;
  the latency-nearest node N1 is overloaded, so the full-space mapping
  picks the lightly loaded N2.
* Figure 4 — three deployed circuits; only the one inside radius r of
  the new service's coordinate is considered, and tapping it wins.

Beyond the paper's figures, :func:`chaos_scenario` assembles the
everything-at-once stress fixture for the data-plane runtime: several
installed circuits carrying live tuple traffic while a hotspot
overloads the busiest hosts, latencies drift, churn fails nodes, and
the re-optimizer migrates services mid-stream — with per-node
backpressure so drops are real and accounted.

:func:`selectivity_drift_scenario` is the control plane's standing
fixture: fan-out filter chains whose *realized* selectivity drifts far
from the estimate the optimizer priced, so the optimal placement flips
sides — the stale-estimate baseline keeps a provably wrong placement
while the closed loop (measured rates calibrated back into the
re-optimizer) tracks the truth.  :func:`closed_loop_recovery` runs the
baseline / controlled / oracle triplet over identical RNG draws and
reports how much of the usage gap the controller recovers.

:func:`cpu_hotspot_scenario` is the unified-load-currency fixture:
join-heavy chains pile their CPU cost (not their tuple counts) onto one
latency-optimal host, and only the loop that writes measured per-node
cost into the cost space's load dimension spreads them out —
:func:`cpu_overload_comparison` reports the p95 measured CPU overload
of the count-gated baseline vs the cost-gated loop (E20).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control import ControlConfig, Controller
from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.load_model import LoadModel
from repro.core.optimizer import IntegratedOptimizer
from repro.core.weighting import squared
from repro.network.dynamics import (
    ChurnProcess,
    HotspotEvent,
    LatencyDriftProcess,
    LoadProcess,
)
from repro.network.latency import LatencyMatrix
from repro.network.topology import (
    Topology,
    TransitStubParams,
    random_geometric_topology,
    transit_stub_topology,
)
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.operators import ServiceSpec
from repro.query.selectivity import Statistics
from repro.runtime.dataplane import DataPlane, ParameterDrift, RuntimeConfig
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.scaling import AutoScaler, AutoScalerConfig
from repro.workloads.queries import WorkloadParams, random_query

__all__ = [
    "Figure1Scenario",
    "figure1_scenario",
    "figure2_scenario",
    "Figure3Scenario",
    "figure3_scenario",
    "Figure4Scenario",
    "figure4_scenario",
    "planted_latency_matrix",
    "ChaosScenario",
    "chaos_scenario",
    "TenantChurnScenario",
    "tenant_churn_scenario",
    "DriftScenario",
    "selectivity_drift_scenario",
    "closed_loop_recovery",
    "CpuHotspotScenario",
    "cpu_hotspot_scenario",
    "cpu_overload_comparison",
    "scaling_overload_comparison",
]


def planted_latency_matrix(
    positions: list[tuple[float, ...]], scale: float = 1.0
) -> LatencyMatrix:
    """Latency matrix whose entries are Euclidean distances × scale.

    Planting nodes at explicit positions makes scenario geometry exact:
    a perfect 2-D embedding of this matrix is the positions themselves.
    """
    n = len(positions)
    matrix = np.zeros((n, n))
    pts = np.asarray(positions, dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            d = float(np.linalg.norm(pts[i] - pts[j])) * scale
            matrix[i, j] = matrix[j, i] = d
    return LatencyMatrix(matrix)


def perfect_cost_space(
    positions: list[tuple[float, ...]],
    loads: list[float] | None = None,
) -> CostSpace:
    """Cost space whose vector part *is* the planted geometry."""
    pts = np.asarray(positions, dtype=float)
    if loads is None:
        spec = CostSpaceSpec.latency_only(vector_dims=pts.shape[1])
        return CostSpace.from_embedding(spec, pts)
    spec = CostSpaceSpec.latency_load(vector_dims=pts.shape[1])
    return CostSpace.from_embedding(spec, pts, {"cpu_load": np.asarray(loads)})


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------


@dataclass
class Figure1Scenario:
    """The two-step-vs-integrated inefficiency setup.

    Attributes:
        positions: planted 2-D node positions.
        latencies: planted latency matrix.
        cost_space: perfect latency cost space over the positions.
        query: the 4-producer join query.
        stats: statistics that make the *oblivious* optimizer pick the
            cross-cluster pairing (Query Plan 1).
    """

    positions: list[tuple[float, float]]
    latencies: LatencyMatrix
    cost_space: CostSpace
    query: QuerySpec
    stats: Statistics


def figure1_scenario() -> Figure1Scenario:
    """Build the paper's Figure 1 situation deterministically.

    Geometry: P1,P2 in a west cluster; P3,P4 in an east cluster; the
    consumer in the middle; a line of intermediate nodes provides
    placement sites.  Statistics: the cross-cluster pairs (P1⋈P3,
    P2⋈P4) have slightly *lower* selectivity than the intra-cluster
    pairs, so a network-oblivious plan generator prefers them — but the
    data then has to cross the network twice, which integrated
    optimization discovers and avoids.
    """
    # Node layout (index: role):
    #   0: P1 (west),   1: P2 (west),  2: P3 (east),  3: P4 (east)
    #   4: consumer (center)
    #   5-12: placement sites spread across the map.
    positions: list[tuple[float, float]] = [
        (0.0, 0.2),    # P1
        (0.0, 0.8),    # P2
        (10.0, 0.2),   # P3
        (10.0, 0.8),   # P4
        (5.0, 0.5),    # consumer
        (0.5, 0.5),    # west hub
        (9.5, 0.5),    # east hub
        (2.5, 0.5),
        (7.5, 0.5),
        (5.0, 1.5),
        (5.0, -0.5),
        (1.5, 0.5),
        (8.5, 0.5),
    ]
    latencies = planted_latency_matrix(positions, scale=10.0)
    cost_space = perfect_cost_space([tuple(10.0 * c for c in p) for p in positions])

    producers = [
        Producer("P1", node=0, rate=10.0),
        Producer("P2", node=1, rate=10.0),
        Producer("P3", node=2, rate=10.0),
        Producer("P4", node=3, rate=10.0),
    ]
    query = QuerySpec(
        name="fig1", producers=producers, consumer=Consumer("C", node=4)
    )
    # Cross-cluster pairs marginally more selective: the oblivious
    # optimizer takes the bait.
    stats = Statistics.build(
        rates={p.name: p.rate for p in producers},
        pair_selectivities={
            ("P1", "P2"): 0.050,
            ("P3", "P4"): 0.050,
            ("P1", "P3"): 0.040,
            ("P2", "P4"): 0.040,
            ("P1", "P4"): 0.045,
            ("P2", "P3"): 0.045,
        },
    )
    return Figure1Scenario(
        positions=positions,
        latencies=latencies,
        cost_space=cost_space,
        query=query,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------


def figure2_scenario(
    seed: int = 0,
) -> tuple[Topology, LatencyMatrix, np.ndarray]:
    """The 600-node transit-stub population with one overloaded node.

    Returns:
        (topology, latency matrix, loads) — loads are moderate
        everywhere except node 0 ("node a"), which is saturated.
    """
    params = TransitStubParams()  # 600 nodes by default
    topology = transit_stub_topology(params, seed=seed)
    latencies = LatencyMatrix.from_topology(topology)
    rng = np.random.default_rng(seed)
    loads = np.clip(rng.normal(0.25, 0.12, size=topology.num_nodes), 0.0, 1.0)
    loads[0] = 0.97  # the overloaded "node a" of the figure
    return topology, latencies, loads


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


@dataclass
class Figure3Scenario:
    """Virtual placement + physical mapping with a load tiebreak.

    Attributes:
        cost_space: planted space with loads.
        latencies: planted latency matrix.
        query: 2-producer join, one unpinned service.
        stats: simple statistics.
        n1: index of the latency-near but overloaded node.
        n2: index of the slightly farther but idle node.
        star: the ideal (virtual) coordinate of the unpinned service.
    """

    cost_space: CostSpace
    latencies: LatencyMatrix
    query: QuerySpec
    stats: Statistics
    n1: int
    n2: int
    star: np.ndarray


def figure3_scenario() -> Figure3Scenario:
    """Build Figure 3: N1 closer in latency, N2 wins in the full space."""
    # 0: P1, 1: P2, 2: consumer, 3: N1 (near star, loaded), 4: N2
    # (slightly farther, idle), 5: filler.
    positions = [
        (0.0, 0.0),    # P1
        (8.0, 0.0),    # P2
        (4.0, 6.0),    # C
        (4.2, 2.2),    # N1 — ~at the star
        (5.0, 3.0),    # N2 — ~1.2 away from the star
        (12.0, 8.0),   # filler, far away
    ]
    loads = [0.1, 0.1, 0.1, 0.9, 0.05, 0.1]
    latencies = planted_latency_matrix(positions, scale=10.0)
    cost_space = perfect_cost_space(
        [tuple(10.0 * c for c in p) for p in positions], loads
    )
    producers = [
        Producer("P1", node=0, rate=5.0),
        Producer("P2", node=1, rate=5.0),
    ]
    query = QuerySpec(
        name="fig3", producers=producers, consumer=Consumer("C", node=2)
    )
    stats = Statistics.build(
        rates={"P1": 5.0, "P2": 5.0},
        pair_selectivities={("P1", "P2"): 0.1},
    )
    # The spring equilibrium of one service linked to P1, P2 (rate 5
    # each) and C (rate 0.1*5*5=2.5): rate-weighted centroid.
    weights = np.array([5.0, 5.0, 2.5])
    anchor_points = np.array(
        [[0.0, 0.0], [8.0, 0.0], [4.0, 6.0]], dtype=float
    ) * 10.0
    star = (anchor_points * weights[:, None]).sum(axis=0) / weights.sum()
    return Figure3Scenario(
        cost_space=cost_space,
        latencies=latencies,
        query=query,
        stats=stats,
        n1=3,
        n2=4,
        star=star,
    )


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


@dataclass
class Figure4Scenario:
    """Multi-query radius pruning setup.

    Attributes:
        cost_space: planted latency-only space.
        latencies: matching matrix.
        existing: three (query, stats) pairs already deployed (C1-C3).
        new_query: the incoming query whose optimizer should only
            examine the nearby circuit.
        new_stats: statistics of the new query.
        radius: the pruning radius r that includes exactly C3's region.
    """

    cost_space: CostSpace
    latencies: LatencyMatrix
    existing: list[tuple[QuerySpec, Statistics]]
    new_query: QuerySpec
    new_stats: Statistics
    radius: float


def figure4_scenario(seed: int = 0) -> Figure4Scenario:
    """Build Figure 4: three circuits, only the close one is considered.

    Geography: circuits C1 and C2 live in a far "west" region; C3 joins
    the same producers the new query wants, hosted in the "east" region
    near the new consumer.  With radius r covering only the east, the
    optimizer examines C3's services alone and taps C3's join.
    """
    topology = random_geometric_topology(60, radius=0.35, seed=seed)
    latencies = LatencyMatrix.from_topology(topology)
    # Perfect embedding of geometric positions keeps the geometry honest.
    scale = 100.0 / np.sqrt(2.0)
    positions = [
        (x * scale, y * scale) for (x, y) in topology.positions
    ]
    cost_space = perfect_cost_space(positions)

    pts = np.asarray(positions)
    west = list(np.argsort(pts[:, 0])[:20])      # leftmost third
    east = list(np.argsort(pts[:, 0])[-20:])     # rightmost third

    def make_query(name: str, nodes: list[int], seed_: int) -> tuple[QuerySpec, Statistics]:
        names = [f"{name}.P1", f"{name}.P2"]
        stats = Statistics.random(names, seed=seed_)
        producers = [
            Producer(names[0], node=nodes[0], rate=stats.rate(names[0])),
            Producer(names[1], node=nodes[1], rate=stats.rate(names[1])),
        ]
        query = QuerySpec(
            name=name,
            producers=producers,
            consumer=Consumer(f"{name}.C", node=nodes[2]),
        )
        return query, stats

    c1 = make_query("C1", west[0:3], seed_=seed + 1)
    c2 = make_query("C2", west[3:6], seed_=seed + 2)

    # C3 shares producers with the new query: same names, same nodes.
    shared_names = ["S.P1", "S.P2"]
    shared_stats = Statistics.build(
        rates={"S.P1": 8.0, "S.P2": 8.0},
        pair_selectivities={("S.P1", "S.P2"): 0.1},
    )
    shared_producers = [
        Producer("S.P1", node=east[0], rate=8.0),
        Producer("S.P2", node=east[1], rate=8.0),
    ]
    c3_query = QuerySpec(
        name="C3",
        producers=shared_producers,
        consumer=Consumer("C3.C", node=east[2]),
    )
    new_query = QuerySpec(
        name="new",
        producers=shared_producers,
        consumer=Consumer("new.C", node=east[3]),
    )

    # Radius: halfway between the east cluster's internal spread and the
    # west-east separation, so the ball covers C3's region but not C1/C2.
    east_pts = pts[east]
    east_span = float(np.linalg.norm(east_pts.max(axis=0) - east_pts.min(axis=0)))
    west_east_gap = float(
        np.linalg.norm(pts[west].mean(axis=0) - east_pts.mean(axis=0))
    )
    radius = min(east_span, 0.6 * west_east_gap)

    return Figure4Scenario(
        cost_space=cost_space,
        latencies=latencies,
        existing=[c1, c2, (c3_query, shared_stats)],
        new_query=new_query,
        new_stats=shared_stats,
        radius=radius,
    )


# ---------------------------------------------------------------------------
# Chaos: live traffic under churn + hotspot + migration
# ---------------------------------------------------------------------------


@dataclass
class ChaosScenario:
    """Live-traffic stress fixture for the data-plane runtime.

    Attributes:
        overlay: the assembled overlay with all circuits installed.
        simulation: tick loop wired with load hotspot, latency drift,
            churn (pinned nodes protected), periodic re-optimization,
            and the executing data plane.
        data_plane: the data plane installed in the simulation.
        pinned_nodes: producer/consumer nodes (churn-protected).
        hotspot_nodes: the initially-busiest hosts the hotspot targets.
    """

    overlay: Overlay
    simulation: Simulation
    data_plane: DataPlane
    pinned_nodes: set[int]
    hotspot_nodes: tuple[int, ...]


def chaos_scenario(
    num_nodes: int = 36,
    num_circuits: int = 4,
    node_capacity: float | None = 60.0,
    reopt_interval: int = 5,
    hotspot_start: int = 8,
    hotspot_duration: int = 30,
    seed: int = 0,
    obs=None,
    control: bool = False,
) -> ChaosScenario:
    """Everything at once: traffic + hotspot + drift + churn + migration.

    Installs ``num_circuits`` optimized join circuits on a geometric
    overlay and runs them on the data plane while (1) a load hotspot
    saturates the nodes hosting the most services, forcing the
    re-optimizer to migrate mid-stream, (2) latencies drift, and (3)
    unpinned nodes fail and recover.  Per-node ``node_capacity``
    bounds tuple admission per tick, so overload produces *accounted*
    drops rather than silent loss — the fixture behind the E18
    conservation property and ``examples/live_traffic.py``.
    """
    radius = max(0.3, 2.2 / np.sqrt(num_nodes))
    topology = random_geometric_topology(num_nodes, radius=radius, seed=seed)
    overlay = Overlay.build(topology, vector_dims=2, embedding_rounds=30, seed=seed)

    params = WorkloadParams(
        num_producers=3,
        rate_bounds=(3.0, 8.0),
        selectivity_bounds=(0.2, 0.6),
    )
    optimizer = overlay.integrated_optimizer()
    pinned: set[int] = set()
    for i in range(num_circuits):
        query, stats = random_query(num_nodes, params, name=f"q{i}", seed=seed * 101 + i)
        overlay.install(optimizer.optimize(query, stats))
        pinned |= {p.node for p in query.producers}
        pinned.add(query.consumer.node)

    # The hotspot hits the busiest unpinned hosts, so re-optimization
    # has to move live services while their tuples are in flight.
    host_use: dict[int, int] = {}
    for circuit in overlay.circuits.values():
        for sid in circuit.unpinned_ids():
            node = circuit.host_of(sid)
            host_use[node] = host_use.get(node, 0) + 1
    busiest = tuple(
        sorted(host_use, key=lambda n: (-host_use[n], n))[: max(1, len(host_use) // 2)]
    )
    load = LoadProcess(num_nodes, mean_load=0.15, sigma=0.05, seed=seed + 1)
    load.add_hotspot(
        HotspotEvent(
            start_tick=hotspot_start,
            duration=hotspot_duration,
            nodes=busiest,
            extra_load=0.8,
        )
    )
    drift = LatencyDriftProcess(overlay.latencies, drift_sigma=0.02, seed=seed + 2)
    churn = ChurnProcess(
        num_nodes, fail_prob=0.01, recover_prob=0.2, protected=pinned, seed=seed + 3
    )
    data_plane = DataPlane(
        overlay, RuntimeConfig(seed=seed + 4, node_capacity=node_capacity)
    )
    simulation = Simulation(
        overlay,
        load_process=load,
        latency_drift=drift,
        churn=churn,
        config=SimulationConfig(reopt_interval=reopt_interval, migration_threshold=0.01),
        data_plane=data_plane,
        obs=obs,
        control=control,
    )
    return ChaosScenario(
        overlay=overlay,
        simulation=simulation,
        data_plane=data_plane,
        pinned_nodes=pinned,
        hotspot_nodes=busiest,
    )


# ---------------------------------------------------------------------------
# Tenant churn: circuits arrive and depart every tick (arena stress, E21)
# ---------------------------------------------------------------------------


@dataclass
class TenantChurnScenario:
    """Rolling tenant arrivals/departures over a live data plane.

    The structural-churn fixture behind the arena runtime path (PR 7):
    the driver calls :meth:`churn_tick` between simulation steps, so
    every data-plane tick starts with circuits freshly installed and
    uninstalled — the worst case for full recompilation and exactly
    what incremental segment install/tombstone amortizes.

    Circuit construction is fully deterministic in ``(seed, tenant
    index)``, so two scenarios built with the same arguments but
    different :class:`~repro.runtime.dataplane.RuntimeConfig` modes
    (incremental arena vs legacy full-recompile) see bit-identical
    workloads — the property tests drive such twins in lockstep.

    Attributes:
        overlay: the assembled overlay with the initial tenants.
        simulation: tick loop driving the data plane (no node churn or
            drift; the only dynamics are background load and tenants).
        data_plane: the executing data plane.
        optimizer: the placement optimizer used for every install.
        params: workload shape of each tenant query.
        num_nodes: overlay size (circuit factory input).
        seed: base seed (circuit factory input).
        installed: names of currently installed tenants, oldest first.
        next_id: index the next arriving tenant will take.
    """

    overlay: Overlay
    simulation: Simulation
    data_plane: DataPlane
    optimizer: "IntegratedOptimizer"
    params: WorkloadParams
    num_nodes: int
    seed: int
    installed: list[str]
    next_id: int = 0

    def install_next(self) -> str:
        """Install the next tenant's circuit; returns its name."""
        name = f"t{self.next_id}"
        query, stats = random_query(
            self.num_nodes,
            self.params,
            name=name,
            seed=self.seed * 131 + self.next_id,
        )
        self.overlay.install(self.optimizer.optimize(query, stats))
        self.installed.append(name)
        self.next_id += 1
        return name

    def uninstall_oldest(self) -> str | None:
        """Uninstall the longest-lived tenant; returns its name."""
        if not self.installed:
            return None
        name = self.installed.pop(0)
        self.overlay.uninstall(name)
        return name

    def churn_tick(self, installs: int = 1, uninstalls: int = 1) -> None:
        """One round of tenant churn (departures first, then arrivals)."""
        for _ in range(uninstalls):
            self.uninstall_oldest()
        for _ in range(installs):
            self.install_next()


def tenant_churn_scenario(
    num_nodes: int = 36,
    initial_circuits: int = 8,
    node_capacity: float | None = 60.0,
    reopt_interval: int = 0,
    incremental: bool = True,
    compact_threshold: float = 0.25,
    seed: int = 0,
) -> TenantChurnScenario:
    """Tenants come and go every tick; the data plane must keep up.

    Builds a geometric overlay, installs ``initial_circuits`` optimized
    tenant circuits, and returns a scenario whose :meth:`~
    TenantChurnScenario.churn_tick` rolls the tenant population between
    simulation steps.  ``incremental`` / ``compact_threshold`` select
    the data plane's arena mode — the E21 benchmark and the arena
    property tests run incremental/legacy twins of this fixture.
    Re-optimization is off by default: the fixture isolates *structural*
    churn cost (install/uninstall/compaction), not placement quality.
    """
    radius = max(0.3, 2.2 / np.sqrt(num_nodes))
    topology = random_geometric_topology(num_nodes, radius=radius, seed=seed)
    overlay = Overlay.build(topology, vector_dims=2, embedding_rounds=30, seed=seed)

    params = WorkloadParams(
        num_producers=3,
        rate_bounds=(3.0, 8.0),
        selectivity_bounds=(0.2, 0.6),
    )
    load = LoadProcess(num_nodes, mean_load=0.1, sigma=0.04, seed=seed + 1)
    data_plane = DataPlane(
        overlay,
        RuntimeConfig(
            seed=seed + 4,
            node_capacity=node_capacity,
            incremental=incremental,
            compact_threshold=compact_threshold,
        ),
    )
    simulation = Simulation(
        overlay,
        load_process=load,
        config=SimulationConfig(
            reopt_interval=reopt_interval, migration_threshold=0.01
        ),
        data_plane=data_plane,
    )
    scenario = TenantChurnScenario(
        overlay=overlay,
        simulation=simulation,
        data_plane=data_plane,
        optimizer=overlay.integrated_optimizer(),
        params=params,
        num_nodes=num_nodes,
        seed=seed,
        installed=[],
    )
    for _ in range(initial_circuits):
        scenario.install_next()
    return scenario


# ---------------------------------------------------------------------------
# Selectivity drift: estimates go stale, the control plane closes the loop
# ---------------------------------------------------------------------------


@dataclass
class DriftScenario:
    """The control plane's estimate→measure gap fixture.

    Attributes:
        overlay: the assembled overlay with the drift chains installed.
        simulation: tick loop with periodic re-optimization, the
            executing data plane, and (per ``mode``) the controller.
        data_plane: the executing data plane (realized selectivities
            drift away from the compiled estimates).
        controller: the closed-loop controller, or None (baseline).
        drift: the deterministic drift specs driving the truth.
        drift_end: first tick at which every ramp has completed.
        filters: (circuit, service id) of each drifting filter.
    """

    overlay: Overlay
    simulation: Simulation
    data_plane: DataPlane
    controller: Controller | None
    drift: tuple[ParameterDrift, ...]
    drift_end: int
    filters: list[tuple[str, str]]


def selectivity_drift_scenario(
    mode: str = "control",
    num_nodes: int = 48,
    num_chains: int = 6,
    rate: float = 8.0,
    sel_est: float = 0.1,
    sel_true: float = 0.9,
    drift_begin: int = 15,
    drift_duration: int = 20,
    reopt_interval: int = 5,
    seed: int = 0,
) -> DriftScenario:
    """Fan-out filter chains whose true selectivity walks off the estimate.

    Each chain is ``producer → filter → {two consumers}`` with the
    producer planted far west and both consumers far east.  At the
    *estimated* selectivity the filter's output pull
    (``2 · rate · sel_est``) is weaker than the producer's, so the
    optimal placement sits at the producer; as the realized selectivity
    ramps to ``sel_true`` the output pull dominates and the optimum
    flips to the consumer side.  An optimizer pricing stale estimates
    never moves; one pricing measured (or oracle) rates migrates the
    filter east and wins on *measured* network usage.

    Twin discipline: the only randomness is the data plane's source
    draws, which depend on neither placement nor mode — the
    baseline / control / oracle variants of one seed realize the exact
    same tuple streams, so usage differences are pure placement.

    Args:
        mode: ``"baseline"`` (no controller, stale estimates),
            ``"control"`` (measured-rate calibration), or ``"oracle"``
            (calibration from the analytic true rates).
    """
    if mode not in ("baseline", "control", "oracle"):
        raise ValueError("mode must be baseline, control, or oracle")
    if num_nodes < 3 * num_chains:
        raise ValueError("need at least 3 nodes per chain")
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 100.0, size=(num_nodes, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(num_nodes)})
    overlay = Overlay(latencies, space)

    xorder = np.argsort(points[:, 0])
    west = [int(i) for i in xorder[:num_chains]]
    east = [int(i) for i in xorder[-2 * num_chains:]]
    drift: list[ParameterDrift] = []
    filters: list[tuple[str, str]] = []
    for c in range(num_chains):
        name = f"drift{c}"
        producer, sink0, sink1 = west[c], east[2 * c], east[2 * c + 1]
        circuit = Circuit(name=name)
        circuit.add_service(
            Service(f"{name}/src", ServiceSpec.relay(), producer, frozenset((f"P{c}",)))
        )
        circuit.add_service(
            Service(
                f"{name}/filter", ServiceSpec.filter(sel_est), None, frozenset((f"P{c}",))
            )
        )
        circuit.add_service(
            Service(f"{name}/sink0", ServiceSpec.relay(), sink0, frozenset((f"P{c}",)))
        )
        circuit.add_service(
            Service(f"{name}/sink1", ServiceSpec.relay(), sink1, frozenset((f"P{c}",)))
        )
        circuit.add_link(f"{name}/src", f"{name}/filter", rate)
        circuit.add_link(f"{name}/filter", f"{name}/sink0", rate * sel_est)
        circuit.add_link(f"{name}/filter", f"{name}/sink1", rate * sel_est)
        # Start at the estimate-optimal placement: colocated with the
        # producer (the dominant pull under the stale selectivity).
        circuit.assign(f"{name}/filter", producer)
        overlay.install_circuit(circuit)
        drift.append(
            ParameterDrift(
                circuit=name,
                service=f"{name}/filter",
                param="selectivity",
                start=sel_est,
                end=sel_true,
                begin=drift_begin,
                duration=drift_duration,
            )
        )
        filters.append((name, f"{name}/filter"))

    data_plane = DataPlane(
        overlay, RuntimeConfig(seed=seed + 1, drift=tuple(drift))
    )
    if mode == "baseline":
        control: Controller | bool | None = None
    elif mode == "control":
        control = True
    else:
        control = Controller(data_plane, oracle=True)
    simulation = Simulation(
        overlay,
        config=SimulationConfig(
            reopt_interval=reopt_interval, migration_threshold=0.01
        ),
        data_plane=data_plane,
        control=control,
    )
    return DriftScenario(
        overlay=overlay,
        simulation=simulation,
        data_plane=data_plane,
        controller=simulation.controller,
        drift=tuple(drift),
        drift_end=drift_begin + drift_duration,
        filters=filters,
    )


# ---------------------------------------------------------------------------
# CPU hotspot: joins pile their compute on one node, counts never notice
# ---------------------------------------------------------------------------


@dataclass
class CpuHotspotScenario:
    """The unified-load-currency demo fixture (E20).

    ``num_chains`` join circuits share one latency-optimal host: every
    join sits on the center node, whose *tuple counts* stay modest while
    its *CPU cost* (joins price ``c₀ + c₂·probes`` per arrival, ≫ a
    relay) runs far past the overload limit.  A count-gated system sees
    nothing wrong; the cost-gated closed loop measures the per-node CPU
    cost, writes it into the cost space's load dimension, and the next
    re-optimization pass spreads the joins over the surrounding ring —
    each chain's spring target leans toward its own ring node, so the
    escape is herd-free and stable under the migration-threshold
    hysteresis.

    Attributes:
        overlay: assembled overlay (all circuits installed).
        simulation: tick loop with the executing data plane, the
            controller, and periodic re-optimization.
        data_plane: the executing data plane (``LoadModel`` armed so
            CPU cost is measured in both modes).
        controller: the wired controller (count mode disables only the
            load-dimension write-back).
        joins: (circuit, service id) of every join service.
        hot_node: the shared initial host of all joins.
        ring_nodes: the per-chain escape candidates around it.
        limit: the overload reference, in CPU cost units per tick.
    """

    overlay: Overlay
    simulation: Simulation
    data_plane: DataPlane
    controller: Controller
    joins: list[tuple[str, str]]
    hot_node: int
    ring_nodes: tuple[int, ...]
    limit: float
    autoscaler: AutoScaler | None = None
    spike_window: tuple[int, int] | None = None


def cpu_hotspot_scenario(
    mode: str = "cost",
    num_chains: int = 6,
    ring_radius: float = 3.0,
    anchor_radius: float = 40.0,
    limit: float = 200.0,
    cpu_ref: float = 300.0,
    join_cost: float = 8.0,
    reopt_interval: int = 5,
    calibrate_interval: int = 5,
    seed: int = 0,
    lambda_spike: float | None = None,
    spike_begin: int = 20,
    spike_ramp: int = 8,
    spike_hold: int = 25,
    autoscale: AutoScalerConfig | None = None,
) -> CpuHotspotScenario:
    """Join-heavy chains whose CPU cost concentrates on one node.

    Geometry (planted, exact): chain *c*'s producers sit at
    ``anchor_radius`` along direction θ_c and its opposite, with the
    consumer colocated with the weaker producer; the rate asymmetry
    pulls each chain's spring target a little way (≈1.3 units) toward
    θ_c from the center, where the shared host lives, while its escape
    ring node waits at ``ring_radius`` along the same direction.  The
    center is therefore every chain's latency optimum — only measured
    CPU pressure in the load dimension can justify moving off it, and
    when it does, each join has a *distinct* nearest alternative.

    Args:
        mode: ``"count"`` (the controller never writes measured CPU
            into the load dimension — the count-era baseline) or
            ``"cost"`` (the full unified-currency loop).
        lambda_spike: when set, a flash crowd: every chain's realized
            source λ ramps up by this factor over ``spike_ramp`` ticks
            starting at ``spike_begin``, holds for ``spike_hold``
            ticks, then ramps back down (a gated drift spec, so the
            two ramps share the parameter cleanly).  A 10–100× spike
            pushes single joins past any one node's budget — only
            splitting the operator (elastic scaling) relieves it.
        autoscale: when set, wires a :class:`~repro.scaling.AutoScaler`
            with this config into the simulation, so hot joins split
            into key-partitioned replicas and cold families fold back.

    Both modes run identical tuple streams (source draws are placement-
    independent, and the spike drifts *realized* λ directly), so
    overload differences are pure placement/scaling signal.
    """
    if mode not in ("count", "cost"):
        raise ValueError("mode must be count or cost")
    k = num_chains
    positions = [(0.0, 0.0)]
    for c in range(k):
        theta = 2.0 * np.pi * c / k
        positions.append(
            (ring_radius * np.cos(theta), ring_radius * np.sin(theta))
        )
    for c in range(k):
        theta = 2.0 * np.pi * c / k
        positions.append(
            (anchor_radius * np.cos(theta), anchor_radius * np.sin(theta))
        )
    for c in range(k):
        theta = 2.0 * np.pi * c / k + np.pi
        positions.append(
            (anchor_radius * np.cos(theta), anchor_radius * np.sin(theta))
        )
    n = len(positions)
    latencies = planted_latency_matrix(positions)
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(
        spec, np.asarray(positions), {"cpu_load": np.zeros(n)}
    )
    overlay = Overlay(latencies, space)
    for node in range(n):
        # Neutralize the modeled induced-load estimate: the measured
        # CPU write-back is the only load signal under test.
        overlay.set_node_capacity(node, capacity=1e6)

    joins: list[tuple[str, str]] = []
    for c in range(k):
        name = f"cpu{c}"
        p1, p2 = 1 + k + c, 1 + 2 * k + c
        circuit = Circuit(name=name)
        circuit.add_service(
            Service(f"{name}/src1", ServiceSpec.relay(), p1, frozenset((f"A{c}",)))
        )
        circuit.add_service(
            Service(f"{name}/src2", ServiceSpec.relay(), p2, frozenset((f"B{c}",)))
        )
        circuit.add_service(
            Service(
                f"{name}/join",
                ServiceSpec.join(),
                None,
                frozenset((f"A{c}", f"B{c}")),
            )
        )
        circuit.add_service(
            Service(f"{name}/sink", ServiceSpec.relay(), p2, frozenset(("ALL",)))
        )
        circuit.add_link(f"{name}/src1", f"{name}/join", 8.0)
        circuit.add_link(f"{name}/src2", f"{name}/join", 5.0)
        circuit.add_link(f"{name}/join", f"{name}/sink", 2.5)
        circuit.assign(f"{name}/join", 0)
        overlay.install_circuit(circuit)
        joins.append((name, f"{name}/join"))

    drift: list[ParameterDrift] = []
    spike_window = None
    if lambda_spike is not None:
        spike_end = spike_begin + spike_ramp + spike_hold
        spike_window = (spike_begin, spike_end + spike_ramp)
        for c in range(k):
            name = f"cpu{c}"
            for src, rate in ((f"{name}/src1", 8.0), (f"{name}/src2", 5.0)):
                drift.append(
                    ParameterDrift(
                        circuit=name,
                        service=src,
                        param="source_rate",
                        start=rate,
                        end=rate * lambda_spike,
                        begin=spike_begin,
                        duration=spike_ramp,
                    )
                )
                drift.append(
                    ParameterDrift(
                        circuit=name,
                        service=src,
                        param="source_rate",
                        start=rate * lambda_spike,
                        end=rate,
                        begin=spike_end,
                        duration=spike_ramp,
                        gated=True,
                    )
                )

    model = LoadModel(join_cost=join_cost, probe_cost=0.5)
    data_plane = DataPlane(
        overlay, RuntimeConfig(seed=seed + 1, load_model=model, drift=tuple(drift))
    )
    controller = Controller(
        data_plane,
        ControlConfig(
            warmup=4,
            calibrate_interval=calibrate_interval,
            drop_threshold=None,
            cpu_ref=cpu_ref,
            cpu_calibrate=(mode == "cost"),
        ),
    )
    autoscaler = (
        AutoScaler(overlay, data_plane, autoscale) if autoscale is not None else None
    )
    simulation = Simulation(
        overlay,
        config=SimulationConfig(
            reopt_interval=reopt_interval, migration_threshold=0.05
        ),
        data_plane=data_plane,
        control=controller,
        autoscaler=autoscaler,
    )
    return CpuHotspotScenario(
        overlay=overlay,
        simulation=simulation,
        data_plane=data_plane,
        controller=controller,
        joins=joins,
        hot_node=0,
        ring_nodes=tuple(range(1, k + 1)),
        limit=limit,
        autoscaler=autoscaler,
        spike_window=spike_window,
    )


def cpu_overload_comparison(
    ticks: int = 80,
    eval_window: int = 30,
    seed: int = 0,
    **kwargs,
) -> dict[str, float]:
    """Run the CPU-hotspot pair; report p95 measured CPU overload.

    Overload at a tick is the total measured CPU cost demand above the
    limit, summed over nodes (``Σ max(0, tick_node_cpu - limit)``); the
    reported number per mode is the 95th percentile over the final
    ``eval_window`` ticks.  ``improvement`` is the fraction of the
    count-gated baseline's overload the cost-gated loop eliminates —
    the E20 placement-quality headline (the closed loop demonstrably
    re-places off CPU-hot nodes).
    """
    out: dict[str, float] = {}
    for mode in ("count", "cost"):
        scenario = cpu_hotspot_scenario(mode=mode, seed=seed, **kwargs)
        overload: list[float] = []
        for _ in range(ticks):
            scenario.simulation.step()
            over = np.clip(scenario.data_plane.tick_node_cpu - scenario.limit, 0.0, None)
            overload.append(float(over.sum()))
        tail = np.asarray(overload[-eval_window:])
        out[mode] = float(np.percentile(tail, 95.0))
    if out["count"] > 0:
        out["improvement"] = 1.0 - out["cost"] / out["count"]
    else:
        # Neither mode overloads: a degenerate fixture, not a regression.
        out["improvement"] = 1.0 if out["cost"] == 0 else 0.0
    return out


def scaling_overload_comparison(
    ticks: int = 80,
    eval_window: int = 35,
    seed: int = 0,
    lambda_spike: float = 5.0,
    autoscale: AutoScalerConfig | None = None,
    **kwargs,
) -> dict[str, float]:
    """Flash-crowd hotspot: elastic scaling vs the move-only controller.

    Both runs are the full cost-gated closed loop over *identical*
    tuple streams (the spike drifts realized λ, independent of
    placement or replication); the ``autoscaled`` run additionally
    wires the :class:`~repro.scaling.AutoScaler`.  During the spike a
    single join's measured CPU exceeds any one node's budget, so the
    move-only controller can only shuffle the overload around — the
    autoscaler splits hot joins into key-partitioned replicas, spreads
    them, and folds them back when the crowd passes.

    Reports p95 total measured CPU overload (``Σ max(0,
    tick_node_cpu − limit)``) over the final ``eval_window`` ticks per
    run, plus the autoscaled run's scale-event counts.  ``improvement``
    is the fraction of the move-only overload the scaling loop
    eliminates (the PR 9 acceptance headline: ≥ 0.5).
    """
    # Four chains leave enough spare ring/anchor nodes for the split
    # replicas to land on — the regime where scaling, not moving, is
    # the binding relief (total spiked work still fits the cluster).
    kwargs.setdefault("num_chains", 4)
    if autoscale is None:
        autoscale = AutoScalerConfig(
            budget=kwargs.get("limit", 200.0),
            breach_ticks=2,
            cold_ticks=4,
            cooldown=6,
            k_max=8,
        )
    out: dict[str, float] = {}
    for scaled in (False, True):
        scenario = cpu_hotspot_scenario(
            mode="cost",
            seed=seed,
            lambda_spike=lambda_spike,
            autoscale=autoscale if scaled else None,
            **kwargs,
        )
        overload: list[float] = []
        for _ in range(ticks):
            scenario.simulation.step()
            over = np.clip(
                scenario.data_plane.tick_node_cpu - scenario.limit, 0.0, None
            )
            overload.append(float(over.sum()))
        tail = np.asarray(overload[-eval_window:])
        key = "autoscaled" if scaled else "move_only"
        out[key] = float(np.percentile(tail, 95.0))
        if scaled and scenario.autoscaler is not None:
            out["scale_ups"] = float(scenario.autoscaler.scale_ups)
            out["scale_downs"] = float(scenario.autoscaler.scale_downs)
    if out["move_only"] > 0:
        out["improvement"] = 1.0 - out["autoscaled"] / out["move_only"]
    else:
        out["improvement"] = 1.0 if out["autoscaled"] == 0 else 0.0
    return out


def closed_loop_recovery(
    ticks: int = 90,
    eval_window: int = 25,
    seed: int = 0,
    **kwargs,
) -> dict[str, float]:
    """Run the drift triplet; report the recovered usage fraction.

    Returns a dict with the mean *measured* network usage of each mode
    over the final ``eval_window`` ticks plus ``recovery`` — the
    fraction of the baseline→oracle gap the measured-rate controller
    closes (the paper-style closed-loop headline: ≥ 0.3 is the PR-4
    acceptance floor; in practice it sits near 1.0).
    """
    usage: dict[str, float] = {}
    for mode in ("baseline", "control", "oracle"):
        scenario = selectivity_drift_scenario(mode=mode, seed=seed, **kwargs)
        scenario.simulation.run(ticks)
        usage[mode] = scenario.simulation.series.mean_data_usage_over(
            ticks - eval_window + 1, ticks + 1
        )
    gap = usage["baseline"] - usage["oracle"]
    usage["recovery"] = (
        (usage["baseline"] - usage["control"]) / gap if gap > 0 else 0.0
    )
    return usage
