"""Elastic operator scaling: key-partitioned replicas + autoscaler.

The rewrite primitives live in :mod:`repro.core.rewriting`
(:func:`~repro.core.rewriting.replicate_operator`,
:func:`~repro.core.rewriting.merge_replicas`); the data plane executes
replicated segments with deterministic key-bucket routing.  This
package adds the policy layer: :class:`~repro.scaling.autoscaler.
AutoScaler` watches the measured per-family CPU cost and decides when
to split a hot join/aggregate into more key-partitioned replicas — and
when to fold a cold family back down.
"""

from repro.scaling.autoscaler import AutoScaler, AutoScalerConfig

__all__ = ["AutoScaler", "AutoScalerConfig"]
