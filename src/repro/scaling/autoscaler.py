"""Autoscaling controller over key-partitioned operator replicas.

The :class:`AutoScaler` closes the *vertical* loop the placement
controller cannot: when one operator's measured CPU cost outgrows any
single node's budget, no migration helps — the operator itself must
split.  Each tick the autoscaler folds the data plane's per-operator
measured CPU (:attr:`~repro.runtime.dataplane.DataPlane.tick_op_cpu`)
into a per-family EWMA and compares the *per-replica* share against a
budget:

* **scale up** — after ``breach_ticks`` consecutive ticks with the
  per-replica EWMA above ``up_threshold * budget``, the family is
  re-split to ``ceil(ewma / (target_util * budget))`` replicas (capped
  at ``k_max``), with the *new* replicas placed on the least-CPU alive
  nodes so the split spreads instead of herding onto the hot host;
* **scale down** — after ``cold_ticks`` consecutive ticks below
  ``down_threshold * budget`` per replica, the family shrinks toward
  the same sizing target (folding back to the single base at k=1).

The hysteresis band (``down_threshold`` well under ``up_threshold``
over ``target_util``) plus a per-family ``cooldown`` prevents flapping.
Decisions are pure functions of measured state — no RNG — so twin
simulations stepped through :meth:`~repro.sbon.simulator.Simulation.
step` and :meth:`~repro.sbon.simulator.Simulation.step_scalar` make
identical scaling decisions on identical ticks.

Rewrites go through :func:`repro.core.rewriting.replicate_operator`
(which preserves the family's exact link rates) and are installed with
:meth:`repro.sbon.overlay.Overlay.replace_circuit`; the data plane
detects the replaced circuit on its next sync and migrates in-flight
tuples and per-key operator state onto the new replica homes.

Observability: ``scale_up`` / ``scale_down`` structured events (with
the service, old/new k, and the trigger reason) when an
:class:`~repro.obs.events.EventLog` is attached, plus a per-family
``replica_count`` keyed gauge when a registry is attached — both at
decision rate, never inside the tuple hot loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.query.operators import ServiceKind
from repro.core.rewriting import replica_families, replicate_operator

__all__ = ["AutoScalerConfig", "AutoScaler"]

_SCALABLE = (ServiceKind.JOIN, ServiceKind.AGGREGATE)


@dataclass(frozen=True)
class AutoScalerConfig:
    """Policy knobs of the scaling loop.

    Attributes:
        budget: CPU cost units per tick one replica is sized for — the
            same currency as ``LoadModel`` costs and the controller's
            overload limit.
        up_threshold: per-replica EWMA fraction of ``budget`` above
            which a tick counts as a breach.
        down_threshold: fraction below which a tick counts as cold;
            keep well under ``target_util`` for hysteresis.
        breach_ticks: consecutive breach ticks required to scale up.
        cold_ticks: consecutive cold ticks required to scale down.
        cooldown: ticks after any scale event during which the family
            holds its k (counters keep accumulating).
        reopt_hold: ticks after a scale event during which the family's
            members are reported by :meth:`AutoScaler.frozen_services`
            so the re-optimizer leaves them in place while per-key
            state and in-flight tuples settle onto the new replica
            homes.  Defaults to 0 (off): the placement pass is itself
            CPU-aware (measured CPU is calibrated into the cost
            space), so freezing it measurably *delays* overload relief
            on the flash-crowd benchmark — enable only for
            latency-dominated deployments where placement churn after
            scale events is the binding concern.
        k_max: replica-count ceiling per family.
        target_util: sizing target — after a scale event each replica
            should carry about ``target_util * budget``.
        alpha: EWMA smoothing weight for the family CPU measurement.
    """

    budget: float = 200.0
    up_threshold: float = 1.0
    down_threshold: float = 0.35
    breach_ticks: int = 3
    cold_ticks: int = 5
    cooldown: int = 10
    reopt_hold: int = 0
    k_max: int = 8
    target_util: float = 0.7
    alpha: float = 0.4

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if not 0 < self.target_util <= 1:
            raise ValueError("target_util must be in (0, 1]")
        if self.down_threshold >= self.up_threshold:
            raise ValueError("down_threshold must be below up_threshold")
        if self.k_max < 1:
            raise ValueError("k_max must be >= 1")
        if self.reopt_hold < 0:
            raise ValueError("reopt_hold must be >= 0")


class AutoScaler:
    """Watches measured per-family CPU; splits hot operators, folds cold ones.

    Attributes:
        events: optional :class:`~repro.obs.events.EventLog`; receives
            ``scale_up`` / ``scale_down`` structured events.
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            receives the per-family ``replica_count`` keyed gauge.
        scale_ups / scale_downs: cumulative decision counters.
    """

    def __init__(self, overlay, data_plane, config: AutoScalerConfig | None = None):
        self.overlay = overlay
        self.data_plane = data_plane
        self.config = config or AutoScalerConfig()
        self.events = None
        self.registry = None
        self.tick = 0
        self.scale_ups = 0
        self.scale_downs = 0
        # Per-(circuit, base) policy state.  Keys survive scale events:
        # the family is tracked under its base id at every k.
        self._ewma: dict[tuple[str, str], float] = {}
        self._breach: dict[tuple[str, str], int] = {}
        self._cold: dict[tuple[str, str], int] = {}
        self._hold_until: dict[tuple[str, str], int] = {}
        self._reopt_hold_until: dict[tuple[str, str], int] = {}

    # -- candidate discovery -------------------------------------------

    def _candidates(self) -> list[tuple[object, str, int, list[str]]]:
        """Every scalable family: (circuit, base, k, member sids).

        Unreplicated joins/aggregates are k=1 families of themselves;
        replicated ones list their replicas plus the merge relay.
        """
        out = []
        for circuit in self.overlay.circuits.values():
            families = replica_families(circuit)
            for base, fam in families.items():
                members = [sid for sid in fam["replicas"] if sid is not None]
                if fam["merge"] is not None:
                    members.append(fam["merge"])
                out.append((circuit, base, fam["count"], members))
            has_in: set[str] = set()
            has_out: set[str] = set()
            for link in circuit.links:
                has_in.add(link.target)
                has_out.add(link.source)
            for sid, service in circuit.services.items():
                if (
                    service.replica is None
                    and service.kind in _SCALABLE
                    and not service.is_pinned
                    and sid in has_in
                    and sid in has_out
                ):
                    out.append((circuit, sid, 1, [sid]))
        return out

    def frozen_services(self) -> set[tuple[str, str]]:
        """Member sids of families still inside a ``reopt_hold`` window.

        The simulator feeds these to the re-optimizer (its ``frozen``
        set) so a freshly re-split family is not migrated while its
        per-key state and in-flight tuples are still settling onto the
        new replica homes — without the hold-down the two control loops
        can fight over the same operators: a scale-up spreads replicas
        onto cold nodes and the very next placement pass herds them
        back.  Empty unless ``config.reopt_hold`` > 0 (see the config
        docstring for why the default leaves the placement pass free).
        """
        out: set[tuple[str, str]] = set()
        if not self._reopt_hold_until:
            return out
        for circuit, base, _k, members in self._candidates():
            if self.tick < self._reopt_hold_until.get((circuit.name, base), 0):
                for sid in members:
                    out.add((circuit.name, sid))
        return out

    def _family_cpu(self, circuit_name: str, members: list[str]) -> float | None:
        """Summed measured CPU of the family's arena rows this tick."""
        dp = self.data_plane
        cpu = dp.tick_op_cpu
        total = 0.0
        for sid in members:
            row = dp._op_index.get((circuit_name, sid))
            if row is None or row >= cpu.size:
                return None  # not compiled yet this tick
            total += float(cpu[row])
        return total

    def _spread_hints(
        self, circuit, base: str, old_k: int, new_k: int, members: list[str]
    ) -> list[int | None]:
        """Placement for the re-split: keep surviving replicas home,
        put *new* replicas on the least-CPU alive nodes."""
        if old_k > 1:
            kept = [circuit.placement.get(sid) for sid in members[:old_k]]
        else:
            kept = [circuit.placement.get(base)]
        kept = kept[:new_k]
        need = new_k - len(kept)
        if need <= 0:
            return kept
        node_cpu = np.asarray(self.data_plane.tick_node_cpu, dtype=float)
        alive = self.overlay.alive_mask()
        order = np.argsort(node_cpu, kind="stable")
        used = {n for n in kept if n is not None}
        fresh: list[int | None] = []
        for node in order:
            node = int(node)
            if not alive[node] or node in used:
                continue
            fresh.append(node)
            used.add(node)
            if len(fresh) == need:
                break
        while len(fresh) < need:
            fresh.append(None)  # fall back to the base host
        return kept + fresh

    # -- the decision loop ---------------------------------------------

    def step(self) -> int:
        """One decision pass; returns the number of scale events applied."""
        self.tick += 1
        cfg = self.config
        scaled = 0
        gauge_keys: list[tuple] = []
        gauge_vals: list[float] = []
        for circuit, base, k, members in self._candidates():
            key = (circuit.name, base)
            measured = self._family_cpu(circuit.name, members)
            if measured is None:
                gauge_keys.append(key)
                gauge_vals.append(float(k))
                continue
            prev = self._ewma.get(key)
            ewma = (
                measured
                if prev is None
                else cfg.alpha * measured + (1.0 - cfg.alpha) * prev
            )
            self._ewma[key] = ewma
            per_replica = ewma / k
            if per_replica > cfg.up_threshold * cfg.budget:
                self._breach[key] = self._breach.get(key, 0) + 1
                self._cold[key] = 0
            elif k > 1 and per_replica < cfg.down_threshold * cfg.budget:
                self._cold[key] = self._cold.get(key, 0) + 1
                self._breach[key] = 0
            else:
                self._breach[key] = 0
                self._cold[key] = 0

            k_new = k
            reason = None
            if self.tick >= self._hold_until.get(key, 0):
                target = max(
                    1, math.ceil(ewma / (cfg.target_util * cfg.budget))
                )
                if self._breach.get(key, 0) >= cfg.breach_ticks and k < cfg.k_max:
                    k_new = min(cfg.k_max, max(k + 1, target))
                    reason = "cpu_breach"
                elif self._cold.get(key, 0) >= cfg.cold_ticks and k > 1:
                    k_new = max(1, min(k - 1, target))
                    reason = "cold"
            if k_new != k and reason is not None:
                hints = (
                    self._spread_hints(circuit, base, k, k_new, members)
                    if k_new > 1
                    else None
                )
                result = replicate_operator(circuit, base, k_new, placement=hints)
                if result.applied:
                    self.overlay.replace_circuit(result.circuit)
                    scaled += 1
                    self._hold_until[key] = self.tick + cfg.cooldown
                    if cfg.reopt_hold > 0:
                        self._reopt_hold_until[key] = (
                            self.tick + cfg.reopt_hold
                        )
                    self._breach[key] = 0
                    self._cold[key] = 0
                    if k_new > k:
                        self.scale_ups += 1
                    else:
                        self.scale_downs += 1
                    if self.events is not None:
                        self.events.emit(
                            self.tick,
                            "scale_up" if k_new > k else "scale_down",
                            circuit=circuit.name,
                            service=base,
                            k_from=k,
                            k_to=k_new,
                            reason=reason,
                            family_cpu=round(ewma, 3),
                        )
                    k = k_new
            gauge_keys.append(key)
            gauge_vals.append(float(k))
        if self.registry is not None and gauge_keys:
            self.registry.keyed_gauge(
                "replica_count",
                ("circuit", "service"),
                help="key-partitioned replicas per operator family",
            ).set(gauge_keys, np.asarray(gauge_vals))
        return scaled
