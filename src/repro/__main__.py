"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``optimize``  — build an overlay, draw (or describe) a query, and run
  the integrated optimizer; prints the candidate plans, the winner, and
  the two-step comparison.
* ``simulate``  — install a random workload and run the tick simulator
  with load drift and periodic re-optimization; ``--data-plane``
  additionally executes every circuit on live tuple streams and
  reports measured traffic (deliveries, drops, latency percentiles);
  ``--reliable`` buffers tuples bound to failed nodes for
  retransmission instead of dropping them; ``--control`` closes the
  loop — measured rates calibrate the re-optimizer's prices and policy
  breaches trigger backpressure-aware re-placements; ``--cpu-cost``
  prices every tuple with the per-operator CPU cost model (joins ≫
  relays) so backpressure, shedding, and the controller's load
  write-back all gate on one cost currency.
* ``execute``   — optimize a query and then execute the winning circuit
  on synthetic streams, validating the cost model.
* ``topology``  — generate a topology and print its statistics.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.costs import GroundTruthEvaluator
from repro.engine import CircuitExecutor
from repro.network.dynamics import LoadProcess
from repro.network.topology import (
    TransitStubParams,
    random_geometric_topology,
    transit_stub_topology,
)
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.queries import WorkloadParams, random_query, random_workload

__all__ = ["main"]


def _make_topology(args):
    if args.topology == "transit-stub":
        scale = max(1, round(args.nodes / 600))
        params = TransitStubParams(
            num_transit_domains=4 * scale if args.nodes >= 600 else 2,
            transit_nodes_per_domain=6 if args.nodes >= 600 else 3,
            stub_domains_per_transit_node=4 if args.nodes >= 600 else 2,
            nodes_per_stub_domain=6 if args.nodes >= 600 else 5,
        )
        return transit_stub_topology(params, seed=args.seed)
    return random_geometric_topology(args.nodes, seed=args.seed)


def _build_overlay(args) -> Overlay:
    topology = _make_topology(args)
    print(
        f"overlay: {topology.num_nodes} nodes ({topology.name}), "
        f"embedding {args.dims}-D ..."
    )
    return Overlay.build(
        topology, vector_dims=args.dims, embedding_rounds=args.rounds, seed=args.seed
    )


def cmd_topology(args) -> int:
    topology = _make_topology(args)
    from repro.network.latency import LatencyMatrix

    lm = LatencyMatrix.from_topology(topology)
    print(f"name        : {topology.name}")
    print(f"nodes       : {topology.num_nodes}")
    print(f"links       : {len(topology.links)}")
    print(f"mean latency: {lm.mean_latency():.1f} ms")
    print(f"diameter    : {lm.max_latency():.1f} ms")
    if topology.node_tags:
        transit = len(topology.nodes_tagged("transit"))
        print(f"transit     : {transit} / stub: {topology.num_nodes - transit}")
    return 0


def cmd_optimize(args) -> int:
    overlay = _build_overlay(args)
    query, stats = random_query(
        overlay.num_nodes,
        WorkloadParams(num_producers=args.producers, clustered=args.clustered),
        seed=args.seed,
    )
    print(f"query: {args.producers} producers, consumer on node {query.consumer.node}")
    integrated = overlay.integrated_optimizer().optimize(query, stats)
    two_step = overlay.two_step_optimizer().optimize(query, stats)
    judge = GroundTruthEvaluator(overlay.latencies)
    print(f"\ncandidates evaluated: {integrated.placements_evaluated}")
    for candidate in sorted(integrated.candidates, key=lambda c: c.cost.total)[:5]:
        print(f"  {candidate.cost.total:10.1f}  {candidate.plan}")
    usage_i = judge.evaluate(integrated.circuit).network_usage
    usage_t = judge.evaluate(two_step.circuit).network_usage
    print(f"\nintegrated: usage {usage_i:10.1f}  {integrated.plan}")
    print(f"two-step  : usage {usage_t:10.1f}  {two_step.plan}")
    return 0


def cmd_simulate(args) -> int:
    overlay = _build_overlay(args)
    workload = random_workload(
        overlay.num_nodes,
        args.queries,
        WorkloadParams(num_producers=args.producers),
        seed=args.seed,
    )
    optimizer = overlay.integrated_optimizer()
    for query, stats in workload:
        overlay.install(optimizer.optimize(query, stats))
    print(f"installed {args.queries} circuits; initial usage "
          f"{overlay.total_network_usage():.1f}")
    obs = None
    want_obs = args.trace or args.profile or args.metrics_out is not None
    data_plane = None
    if (
        args.data_plane
        or args.control
        or args.reliable
        or args.cpu_cost
        or want_obs
    ):
        from repro.runtime import DataPlane, LoadModel, RuntimeConfig

        data_plane = DataPlane(
            overlay,
            RuntimeConfig(
                seed=args.seed,
                node_capacity=args.node_capacity,
                reliable=args.reliable,
                load_model=LoadModel() if args.cpu_cost else None,
            ),
        )
    if want_obs:
        from repro.obs import Observability

        obs = Observability(
            tracing=args.trace,
            trace_rate=args.trace_rate,
            metrics=args.metrics_out is not None,
            profiling=args.profile,
        )
    sim = Simulation(
        overlay,
        load_process=LoadProcess(overlay.num_nodes, seed=args.seed),
        config=SimulationConfig(reopt_interval=args.reopt_interval),
        data_plane=data_plane,
        control=bool(args.control),
        obs=obs,
    )
    series = sim.run(args.ticks)
    summary = series.summary()
    for key, value in summary.items():
        print(f"{key:15s}: {value:.1f}")
    if data_plane is not None:
        acct = data_plane.accounting()
        p95s = [r.latency_p95 for r in series.records if r.delivered]
        p95 = sum(p95s) / len(p95s) if p95s else 0.0
        print(f"{'measured usage':15s}: {data_plane.measured_usage_rate():.1f}")
        print(f"{'cpu cost/tick':15s}: {data_plane.measured_cpu_rate():.1f} "
              f"(peak node {data_plane.cpu_by_node.max() / max(sim.tick, 1):.1f}"
              f"{', unit model: cost == tuple count' if not args.cpu_cost else ''})")
        print(f"{'latency p95 ms':15s}: {p95:.0f} (mean over delivering ticks)")
        print(f"{'conservation':15s}: "
              f"{'balanced' if acct['balanced'] else 'IMBALANCED'} "
              f"(sent {acct['sent']} = off-wire {acct['transport_delivered']} "
              f"+ in flight {acct['in_flight']} + buffered {acct['buffered']}; "
              f"off-wire = processed {acct['processed']} "
              f"+ dropped {acct['dropped']})")
        if args.reliable:
            print(f"{'retransmission':15s}: {data_plane.redelivered} redelivered, "
                  f"{data_plane.dropped_overflow} overflowed, "
                  f"{acct['buffered']} still buffered")
    if sim.controller is not None:
        ctl = sim.controller
        print(f"{'control plane':15s}: {series.total_calibrated_links()} link rates "
              f"calibrated over {ctl.calibrations} passes, "
              f"{ctl.triggers} triggered re-placements "
              f"(drop ewma {ctl.drop_ewma:.3f})")
        if ctl.cpu_calibrations:
            print(f"{'cpu write-back':15s}: measured CPU load fed to placement "
                  f"{ctl.cpu_calibrations} times "
                  f"(reference {ctl.cpu_reference():.0f} cost units/tick)")
        elif args.cpu_cost and ctl.cpu_reference() is None:
            print(f"{'cpu write-back':15s}: skipped — no cost-rate reference; "
                  f"pass --node-capacity so measured CPU load can reach "
                  f"placement")
    if obs is not None:
        if obs.tracer is not None:
            spans = obs.tracer.spans()
            print(f"{'tracing':15s}: {obs.tracer.num_events} events over "
                  f"{len(spans)} sampled spans "
                  f"(rate {obs.tracer.sample_rate:g})")
        if obs.profiler is not None:
            print("\n" + obs.profiler.report())
        if args.metrics_out is not None:
            written = obs.export(args.metrics_out)
            names = ", ".join(sorted(p.name for p in written.values()))
            print(f"\n{'telemetry':15s}: wrote {names} to {args.metrics_out}/")
    return 0


def cmd_execute(args) -> int:
    overlay = _build_overlay(args)
    query, stats = random_query(
        overlay.num_nodes,
        WorkloadParams(
            num_producers=args.producers,
            selectivity_bounds=(0.1, 0.5),
        ),
        seed=args.seed,
    )
    result = overlay.integrated_optimizer().optimize(query, stats)
    judge = GroundTruthEvaluator(overlay.latencies)
    estimated = judge.evaluate(result.circuit).network_usage
    print(f"plan: {result.plan}")
    print(f"estimated usage: {estimated:.1f}")
    executor = CircuitExecutor.from_query(
        result.circuit, query, stats, overlay.latencies, seed=args.seed
    )
    report = executor.run(args.ticks)
    measured = report.measured_network_usage()
    print(f"measured usage : {measured:.1f} (ratio {measured / max(estimated, 1e-9):.3f})")
    print(f"delivered      : {report.delivered} tuples, "
          f"mean latency {report.mean_delivery_latency_ms():.0f} ms")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-space query optimization for stream overlays "
        "(ICDE'05 reproduction)",
    )
    parser.add_argument("--nodes", type=int, default=99, help="overlay size")
    parser.add_argument(
        "--topology", choices=("transit-stub", "geometric"), default="transit-stub"
    )
    parser.add_argument("--dims", type=int, default=2, help="embedding dims")
    parser.add_argument("--rounds", type=int, default=40, help="Vivaldi rounds")
    parser.add_argument("--seed", type=int, default=0)

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topology", help="generate a topology, print stats")

    p_opt = sub.add_parser("optimize", help="optimize one random query")
    p_opt.add_argument("--producers", type=int, default=4)
    p_opt.add_argument("--clustered", action="store_true")

    p_sim = sub.add_parser("simulate", help="run the tick simulator")
    p_sim.add_argument("--queries", type=int, default=4)
    p_sim.add_argument("--producers", type=int, default=3)
    p_sim.add_argument("--ticks", type=int, default=60)
    p_sim.add_argument("--reopt-interval", type=int, default=5)
    p_sim.add_argument(
        "--data-plane", action="store_true",
        help="execute installed circuits on live tuple streams",
    )
    p_sim.add_argument(
        "--node-capacity", type=float, default=None,
        help="CPU cost units a node accepts per tick (backpressure; "
        "tuples/tick without --cpu-cost; default unlimited)",
    )
    p_sim.add_argument(
        "--cpu-cost", action="store_true",
        help="price tuples with the per-operator CPU cost model (one "
        "load currency: relays/filters cost their flat base, joins "
        "c0 + c2*probes, aggregates c0 + c1*batch; backpressure, shed "
        "limits, and the controller's load write-back all gate on "
        "these cost units instead of raw tuple counts; implies "
        "--data-plane; with --control, pass --node-capacity too so "
        "the write-back has a cost-rate reference)",
    )
    p_sim.add_argument(
        "--control", action="store_true",
        help="close the loop: calibrate optimizer prices from measured "
        "rates and trigger re-placement on policy breaches "
        "(implies --data-plane)",
    )
    p_sim.add_argument(
        "--reliable", action="store_true",
        help="buffer tuples bound to failed nodes for retransmission "
        "instead of dropping them (implies --data-plane)",
    )
    p_sim.add_argument(
        "--trace", action="store_true",
        help="record hash-sampled tuple spans through the data plane "
        "(implies --data-plane; export with --metrics-out)",
    )
    p_sim.add_argument(
        "--trace-rate", type=float, default=0.01,
        help="fraction of wire tuples traced (default 0.01)",
    )
    p_sim.add_argument(
        "--profile", action="store_true",
        help="time simulator phases and data-plane kernel stages "
        "(implies --data-plane); prints the phase table",
    )
    p_sim.add_argument(
        "--metrics-out", metavar="DIR", default=None,
        help="export telemetry (metrics.prom/metrics.jsonl, plus "
        "traces.jsonl, profile.json, events.jsonl for the enabled "
        "instruments) under DIR; implies --data-plane",
    )

    p_exe = sub.add_parser("execute", help="execute a circuit on streams")
    p_exe.add_argument("--producers", type=int, default=3)
    p_exe.add_argument("--ticks", type=int, default=2000)

    args = parser.parse_args(argv)
    handlers = {
        "topology": cmd_topology,
        "optimize": cmd_optimize,
        "simulate": cmd_simulate,
        "execute": cmd_execute,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
