"""Runtime stream operators: windowed join, filter, decimating aggregate.

These are the executable counterparts of the planner's
:class:`~repro.query.operators.ServiceSpec` kinds.  Each operator
consumes tuples (tagged with the input port they arrived on), maintains
bounded state, and emits output tuples; all of them expose processed /
emitted counters for the cost-model validation experiment (E14).
"""

from __future__ import annotations

import random
from collections import deque

from repro.engine.tuples import StreamTuple

__all__ = ["Operator", "SymmetricHashJoin", "FilterOperator", "DecimatingAggregate", "RelayOperator"]


class Operator:
    """Base runtime operator."""

    def __init__(self) -> None:
        self.processed = 0
        self.emitted = 0

    def process(self, port: int, tuple_: StreamTuple, now: int) -> list[StreamTuple]:
        """Consume one input tuple; return any outputs."""
        raise NotImplementedError

    def advance(self, now: int) -> list[StreamTuple]:
        """Called once per tick after inputs; default: nothing."""
        return []


class SymmetricHashJoin(Operator):
    """Two-input windowed equi-join on the tuple key.

    Classic symmetric hash join: each arriving tuple probes the other
    side's hash table for key matches within ``window`` ticks, then
    inserts itself.  State is evicted lazily as time advances.
    """

    def __init__(
        self,
        window: int,
        eviction_slack: int = 0,
        match_probability: float = 1.0,
        seed: int = 0,
    ):
        super().__init__()
        if window < 0:
            raise ValueError("window must be non-negative")
        if eviction_slack < 0:
            raise ValueError("eviction_slack must be non-negative")
        if not 0 < match_probability <= 1:
            raise ValueError("match_probability must be in (0, 1]")
        self.window = window
        #: extra ticks of state retention beyond the semantic window,
        #: covering network delivery delay: a tuple may arrive up to
        #: ``eviction_slack`` ticks after its origin timestamp, and its
        #: in-window partners must still be in state when it does.
        self.eviction_slack = eviction_slack
        #: additional join-predicate selectivity applied per candidate
        #: pair (key-equal, in-window).  This is how the executor
        #: realizes the planner's product-form selectivities exactly at
        #: every join of a multi-way plan.
        self.match_probability = match_probability
        self._rng = random.Random(seed)
        self._tables: tuple[dict[int, deque], dict[int, deque]] = ({}, {})

    def _evict(self, table: dict[int, deque], now: int) -> None:
        threshold = now - self.window - self.eviction_slack
        for key in list(table):
            entries = table[key]
            while entries and entries[0].ts < threshold:
                entries.popleft()
            if not entries:
                del table[key]

    def process(self, port: int, tuple_: StreamTuple, now: int) -> list[StreamTuple]:
        if port not in (0, 1):
            raise ValueError("join has exactly two input ports")
        self.processed += 1
        own, other = self._tables[port], self._tables[1 - port]
        self._evict(other, now)

        outputs = []
        for match in other.get(tuple_.key, ()):
            if abs(match.ts - tuple_.ts) <= self.window:
                if (
                    self.match_probability < 1.0
                    and self._rng.random() >= self.match_probability
                ):
                    continue
                outputs.append(tuple_.merge(match))
        own.setdefault(tuple_.key, deque()).append(tuple_)
        self.emitted += len(outputs)
        return outputs

    def state_size(self) -> int:
        """Tuples currently buffered (memory-pressure metric)."""
        return sum(
            len(entries) for table in self._tables for entries in table.values()
        )


class FilterOperator(Operator):
    """Bernoulli predicate: passes a tuple with probability ``selectivity``.

    Deterministic given the tuple key (hash-based), so repeated runs
    agree and selectivity is realized in expectation over keys.
    """

    def __init__(self, selectivity: float, salt: int = 0):
        super().__init__()
        if not 0 < selectivity <= 1:
            raise ValueError("selectivity must be in (0, 1]")
        self.selectivity = selectivity
        self._salt = salt

    def process(self, port: int, tuple_: StreamTuple, now: int) -> list[StreamTuple]:
        self.processed += 1
        bucket = (hash((tuple_.key, self._salt)) % 10_000) / 10_000
        if bucket < self.selectivity:
            self.emitted += 1
            return [tuple_]
        return []


class DecimatingAggregate(Operator):
    """Windowed reduction modelled as deterministic decimation.

    Emits one summary tuple per ``1/factor`` inputs, realizing the
    planner's ``aggregate_factor`` as an output/input rate ratio.  (A
    faithful group-by aggregate would need value semantics the rate
    model does not use; rate behaviour is what E14 validates.)
    """

    def __init__(self, factor: float):
        super().__init__()
        if not 0 < factor <= 1:
            raise ValueError("factor must be in (0, 1]")
        self.factor = factor
        self._credit = 0.0

    def process(self, port: int, tuple_: StreamTuple, now: int) -> list[StreamTuple]:
        self.processed += 1
        self._credit += self.factor
        if self._credit >= 1.0:
            self._credit -= 1.0
            self.emitted += 1
            return [tuple_]
        return []


class RelayOperator(Operator):
    """Pure forwarding (sources and taps)."""

    def process(self, port: int, tuple_: StreamTuple, now: int) -> list[StreamTuple]:
        self.processed += 1
        self.emitted += 1
        return [tuple_]
