"""Runtime stream tuples for the execution engine.

The optimizer works with *rates*; the engine moves actual tuples so the
rate model can be validated end to end.  A tuple carries:

* ``ts`` — logical creation time (tick) at its origin producer, used
  for window joins and end-to-end latency measurement;
* ``key`` — the join attribute (uniform over a domain whose size sets
  the join selectivity);
* ``lineage`` — the set of producers whose data it reflects, which lets
  the collector verify that results really joined all inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StreamTuple"]


@dataclass(frozen=True)
class StreamTuple:
    """One data item flowing through a circuit.

    Attributes:
        ts: origin tick (for a join output: the *latest* origin among
            its constituents, the standard progress semantics).
        key: join key value.
        lineage: producer names merged into this tuple.
        size: abstract size units (1.0 for base tuples; joins add).
    """

    ts: int
    key: int
    lineage: frozenset[str]
    size: float = 1.0

    def __post_init__(self) -> None:
        if self.ts < 0:
            raise ValueError("ts must be non-negative")
        if self.size <= 0:
            raise ValueError("size must be positive")

    def merge(self, other: "StreamTuple") -> "StreamTuple":
        """Join output: merged lineage, max ts, summed size."""
        if self.key != other.key:
            raise ValueError("cannot merge tuples with different keys")
        overlap = self.lineage & other.lineage
        if overlap:
            raise ValueError(f"lineage overlap {sorted(overlap)}")
        return StreamTuple(
            ts=max(self.ts, other.ts),
            key=self.key,
            lineage=self.lineage | other.lineage,
            size=self.size + other.size,
        )
