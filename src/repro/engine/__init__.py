"""Executable stream engine: run placed circuits on synthetic tuples.

Validates the optimizer's rate/cost model end to end: Poisson sources,
windowed symmetric-hash joins, filters, decimating aggregates, and
link delivery delayed by true pairwise latency.  See experiment E14.
"""

from repro.engine.executor import CircuitExecutor, ExecutionReport, LinkMeasurement
from repro.engine.generators import (
    SourceConfig,
    StreamSource,
    key_domain_for_selectivity,
)
from repro.engine.operators import (
    DecimatingAggregate,
    FilterOperator,
    Operator,
    RelayOperator,
    SymmetricHashJoin,
)
from repro.engine.tuples import StreamTuple

__all__ = [
    "CircuitExecutor",
    "ExecutionReport",
    "LinkMeasurement",
    "SourceConfig",
    "StreamSource",
    "key_domain_for_selectivity",
    "DecimatingAggregate",
    "FilterOperator",
    "Operator",
    "RelayOperator",
    "SymmetricHashJoin",
    "StreamTuple",
]
