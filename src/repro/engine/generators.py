"""Synthetic stream sources with controllable rates and selectivities.

A producer emits Poisson(rate) tuples per tick with join keys drawn
uniformly from a domain of size ``key_domain``.  Two such streams,
window-joined on key equality over window ``w`` ticks, match with
expected output rate::

    rate_out = rate_a * rate_b * (2 w + 1) / key_domain

so configuring ``key_domain = (2 w + 1) / selectivity`` realizes any
desired product-form selectivity — the bridge between the optimizer's
:class:`~repro.query.selectivity.Statistics` and executable streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.engine.tuples import StreamTuple

__all__ = ["SourceConfig", "StreamSource", "key_domain_for_selectivity"]


def key_domain_for_selectivity(selectivity: float, window: int) -> int:
    """Key-domain size realizing ``selectivity`` for a given window."""
    if not 0 < selectivity <= 1:
        raise ValueError("selectivity must be in (0, 1]")
    if window < 0:
        raise ValueError("window must be non-negative")
    return max(1, round((2 * window + 1) / selectivity))


@dataclass(frozen=True)
class SourceConfig:
    """Configuration of one synthetic source.

    Attributes:
        name: producer name (becomes tuple lineage).
        rate: mean tuples per tick (Poisson).
        key_domain: join keys are uniform over ``[0, key_domain)``.
        filter_selectivity: independent thinning applied at the source
            (a pushed-down predicate); 1.0 = no filter.
    """

    name: str
    rate: float
    key_domain: int
    filter_selectivity: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.key_domain < 1:
            raise ValueError("key_domain must be >= 1")
        if not 0 < self.filter_selectivity <= 1:
            raise ValueError("filter selectivity must be in (0, 1]")

    @property
    def effective_rate(self) -> float:
        return self.rate * self.filter_selectivity


class StreamSource:
    """Poisson tuple generator for one producer."""

    def __init__(self, config: SourceConfig, seed: int = 0):
        self.config = config
        self._rng = np.random.default_rng(seed)
        self.emitted = 0

    def tick(self, now: int) -> list[StreamTuple]:
        """Tuples produced during tick ``now`` (post-filter)."""
        count = int(self._rng.poisson(self.config.rate))
        out = []
        for _ in range(count):
            if (
                self.config.filter_selectivity < 1.0
                and self._rng.random() >= self.config.filter_selectivity
            ):
                continue
            out.append(
                StreamTuple(
                    ts=now,
                    key=int(self._rng.integers(self.config.key_domain)),
                    lineage=frozenset((self.config.name,)),
                )
            )
        self.emitted += len(out)
        return out
