"""Circuit executor: run a placed circuit on actual synthetic streams.

The optimizer prices circuits from *estimated* link rates; this engine
executes the circuit — Poisson sources, windowed symmetric-hash joins,
link delivery delayed by real pairwise latency — and measures what the
network actually carried.  Experiment E14 compares the two: per-link
measured vs estimated rates, and measured vs estimated network usage.

Time is discrete: one tick is ``tick_ms`` milliseconds.  A tuple sent
on a link with latency L arrives ``round(L / tick_ms)`` ticks later.
Rates in :class:`~repro.query.selectivity.Statistics` are interpreted
as tuples per tick.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.circuit import Circuit
from repro.engine.generators import SourceConfig, StreamSource, key_domain_for_selectivity
from repro.engine.operators import (
    DecimatingAggregate,
    FilterOperator,
    Operator,
    RelayOperator,
    SymmetricHashJoin,
)
from repro.engine.tuples import StreamTuple
from repro.network.latency import LatencyMatrix
from repro.query.model import QuerySpec
from repro.query.operators import ServiceKind
from repro.query.selectivity import Statistics

__all__ = ["LinkMeasurement", "ExecutionReport", "CircuitExecutor"]


@dataclass
class LinkMeasurement:
    """Traffic observed on one circuit link."""

    source: str
    target: str
    latency_ms: float
    tuples: int = 0
    size_units: float = 0.0

    def rate(self, ticks: int) -> float:
        """Measured tuples per tick."""
        return self.tuples / ticks if ticks else 0.0

    def usage(self, ticks: int) -> float:
        """Measured rate × latency contribution."""
        return self.rate(ticks) * self.latency_ms


@dataclass
class ExecutionReport:
    """Everything measured during one execution.

    Attributes:
        ticks: simulated duration.
        links: per-link measurements keyed by (source, target).
        delivered: tuples that reached the consumer.
        delivery_latencies_ms: end-to-end data latencies of delivered
            tuples (origin tick to arrival, in ms).
        operator_stats: per-service (processed, emitted) counters.
    """

    ticks: int
    links: dict[tuple[str, str], LinkMeasurement] = field(default_factory=dict)
    delivered: int = 0
    delivery_latencies_ms: list[float] = field(default_factory=list)
    operator_stats: dict[str, tuple[int, int]] = field(default_factory=dict)

    def measured_network_usage(self) -> float:
        """Σ measured rate × latency over links (the executed objective)."""
        return sum(m.usage(self.ticks) for m in self.links.values())

    def measured_rate(self, source: str, target: str) -> float:
        return self.links[(source, target)].rate(self.ticks)

    def delivery_rate(self) -> float:
        """Result tuples per tick at the consumer."""
        return self.delivered / self.ticks if self.ticks else 0.0

    def mean_delivery_latency_ms(self) -> float:
        if not self.delivery_latencies_ms:
            return 0.0
        return float(np.mean(self.delivery_latencies_ms))

    def rate_agreement(self, circuit: Circuit) -> dict[tuple[str, str], tuple[float, float]]:
        """Per-link (measured, estimated) rate pairs for validation."""
        out = {}
        for link in circuit.links:
            measured = self.measured_rate(link.source, link.target)
            out[(link.source, link.target)] = (measured, link.rate)
        return out


class CircuitExecutor:
    """Executes one placed circuit over synthetic streams.

    Build with :meth:`from_query` (derives sources and windows from the
    planner-side objects) or construct directly with explicit
    :class:`SourceConfig` per producer.
    """

    def __init__(
        self,
        circuit: Circuit,
        latencies: LatencyMatrix,
        sources: dict[str, SourceConfig],
        window: int = 20,
        aggregate_factor: float | None = None,
        tick_ms: float = 10.0,
        seed: int = 0,
        join_match_probabilities: dict[str, float] | None = None,
    ):
        if not circuit.is_fully_placed():
            raise ValueError("circuit must be fully placed to execute")
        if tick_ms <= 0:
            raise ValueError("tick_ms must be positive")
        self.circuit = circuit
        self.latencies = latencies
        self.window = window
        self.tick_ms = tick_ms
        join_match_probabilities = join_match_probabilities or {}

        self._sources: dict[str, StreamSource] = {}
        self._operators: dict[str, Operator] = {}
        self._ports: dict[tuple[str, str], int] = {}
        self._downstream: dict[str, list] = {}
        self._sink_ids = set(circuit.sink_ids())

        # A tuple arriving at a service can be stale by the whole
        # upstream path delay (origin ts vs arrival tick), so join state
        # must be retained for window + path staleness.
        staleness: dict[str, int] = {}

        def path_staleness(sid: str) -> int:
            if sid in staleness:
                return staleness[sid]
            incoming_links = [l for l in circuit.links if l.target == sid]
            worst = 0
            for link in incoming_links:
                worst = max(
                    worst,
                    path_staleness(link.source)
                    + self._delay_ticks(link.source, sid),
                )
            staleness[sid] = worst
            return worst

        rng = np.random.default_rng(seed)
        for sid, service in circuit.services.items():
            incoming = [l for l in circuit.links if l.target == sid]
            for port, link in enumerate(incoming):
                self._ports[(link.source, sid)] = port
            self._downstream[sid] = circuit.output_links(sid)

            if sid in set(circuit.source_ids()):
                (producer_name,) = service.producers
                if producer_name not in sources:
                    raise ValueError(f"no source config for producer {producer_name}")
                self._sources[sid] = StreamSource(
                    sources[producer_name], seed=int(rng.integers(1 << 31))
                )
                self._operators[sid] = RelayOperator()
            elif service.kind is ServiceKind.JOIN:
                slack = path_staleness(sid)
                self._operators[sid] = SymmetricHashJoin(
                    window=window,
                    eviction_slack=slack,
                    match_probability=join_match_probabilities.get(sid, 1.0),
                    seed=int(rng.integers(1 << 31)),
                )
            elif service.kind is ServiceKind.FILTER:
                sel = service.spec.selectivity or 1.0
                self._operators[sid] = FilterOperator(sel, salt=len(self._operators))
            elif service.kind is ServiceKind.AGGREGATE:
                factor = aggregate_factor if aggregate_factor is not None else 0.5
                self._operators[sid] = DecimatingAggregate(factor)
            else:
                self._operators[sid] = RelayOperator()

    @classmethod
    def from_query(
        cls,
        circuit: Circuit,
        query: QuerySpec,
        stats: Statistics,
        latencies: LatencyMatrix,
        window: int = 20,
        tick_ms: float = 10.0,
        seed: int = 0,
    ) -> "CircuitExecutor":
        """Derive source configs from the planner-side query objects.

        Statistics rates become tuples/tick.  To realize the planner's
        product-form rate model *exactly at every join of a multi-way
        plan*, the shared key domain is sized for the largest pairwise
        selectivity, and each join node applies an additional Bernoulli
        match probability::

            q(node) = Π_{a ∈ left, b ∈ right} sel(a, b)  /  s_key

        where ``s_key = (2w+1) / key_domain`` is the selectivity the key
        match alone realizes.  Since ``s_key >= max pairwise sel``,
        ``q <= 1`` always holds, and the expected output rate of every
        join equals the planner's ``rate_of_subset`` estimate.
        """
        names = query.producer_names
        if len(names) >= 2:
            max_sel = max(
                stats.selectivity(a, b)
                for i, a in enumerate(names)
                for b in names[i + 1 :]
            )
        else:
            max_sel = 1.0
        # floor keeps s_key >= max_sel so thinning never exceeds 1.
        domain = max(1, int((2 * window + 1) / max_sel))
        s_key = (2 * window + 1) / domain

        join_probs: dict[str, float] = {}
        for sid, service in circuit.services.items():
            if service.kind is not ServiceKind.JOIN:
                continue
            inputs = [l for l in circuit.links if l.target == sid]
            if len(inputs) != 2:
                continue
            left = circuit.services[inputs[0].source].producers
            right = circuit.services[inputs[1].source].producers
            cross = 1.0
            for a in left:
                for b in right:
                    cross *= stats.selectivity(a, b)
            join_probs[sid] = min(1.0, cross / s_key)

        sources = {
            name: SourceConfig(
                name=name,
                rate=stats.rate(name),
                key_domain=domain,
                filter_selectivity=query.filters.get(name, 1.0),
            )
            for name in names
        }
        return cls(
            circuit,
            latencies,
            sources,
            window=window,
            aggregate_factor=query.aggregate_factor,
            tick_ms=tick_ms,
            seed=seed,
            join_match_probabilities=join_probs,
        )

    def _delay_ticks(self, source_sid: str, target_sid: str) -> int:
        u = self.circuit.host_of(source_sid)
        v = self.circuit.host_of(target_sid)
        if u == v:
            return 0
        return max(0, round(self.latencies.latency(u, v) / self.tick_ms))

    def run(self, ticks: int) -> ExecutionReport:
        """Execute for ``ticks`` ticks; returns the measurement report."""
        if ticks <= 0:
            raise ValueError("ticks must be positive")
        report = ExecutionReport(ticks=ticks)
        for link in self.circuit.links:
            u = self.circuit.host_of(link.source)
            v = self.circuit.host_of(link.target)
            latency = 0.0 if u == v else self.latencies.latency(u, v)
            report.links[(link.source, link.target)] = LinkMeasurement(
                source=link.source, target=link.target, latency_ms=latency
            )

        heap: list[tuple[int, int, str, str, StreamTuple]] = []
        seq = 0

        def send(sid: str, outputs: list[StreamTuple], now: int) -> None:
            nonlocal seq
            for link in self._downstream[sid]:
                measurement = report.links[(sid, link.target)]
                delay = self._delay_ticks(sid, link.target)
                for tuple_ in outputs:
                    measurement.tuples += 1
                    measurement.size_units += tuple_.size
                    heapq.heappush(
                        heap, (now + delay, seq, sid, link.target, tuple_)
                    )
                    seq += 1

        for now in range(ticks):
            # 1. Sources emit.
            for sid, source in self._sources.items():
                fresh = source.tick(now)
                operator = self._operators[sid]
                outputs = []
                for tuple_ in fresh:
                    outputs.extend(operator.process(0, tuple_, now))
                send(sid, outputs, now)

            # 2. Deliver due messages.
            while heap and heap[0][0] <= now:
                _, _, from_sid, to_sid, tuple_ = heapq.heappop(heap)
                if to_sid in self._sink_ids:
                    report.delivered += 1
                    report.delivery_latencies_ms.append(
                        (now - tuple_.ts) * self.tick_ms
                    )
                    self._operators[to_sid].process(0, tuple_, now)
                    continue
                port = self._ports[(from_sid, to_sid)]
                outputs = self._operators[to_sid].process(port, tuple_, now)
                send(to_sid, outputs, now)

        for sid, operator in self._operators.items():
            report.operator_stats[sid] = (operator.processed, operator.emitted)
        return report
