"""Plan generation: enumeration of candidate join trees.

Plan generation (§2.1) outputs logical plans; the integrated optimizer
then virtually places *each* candidate and keeps the cheapest circuit.
Three enumeration strategies are provided:

* :func:`enumerate_all_plans` — every distinct binary join tree over
  the producers (up to join commutativity).  There are
  ``(2n-3)!! = 1, 3, 15, 105, 945, ...`` such trees, so this is the
  ground-truth enumeration for small queries (n ≤ ~7).
* :func:`enumerate_left_deep_plans` — the ``n!/2`` left-deep trees,
  deduplicated on the first join's commutativity.
* :func:`top_k_plans` — Selinger-style dynamic programming over
  producer subsets that retains the ``k`` cheapest sub-plans per subset
  (by intermediate-rate cost), producing a *diverse candidate set* for
  the integrated optimizer at scale.  With ``k=1`` it degenerates to
  the classic single-best DP used by the two-step baseline.
"""

from __future__ import annotations

import itertools

from repro.query.plan import JoinNode, LeafNode, LogicalPlan, PlanNode
from repro.query.selectivity import Statistics

__all__ = [
    "enumerate_all_plans",
    "enumerate_left_deep_plans",
    "top_k_plans",
    "best_plan",
    "count_all_plans",
]


def count_all_plans(num_producers: int) -> int:
    """Number of distinct binary join trees over n producers: (2n-3)!!."""
    if num_producers < 1:
        raise ValueError("need at least one producer")
    if num_producers == 1:
        return 1
    count = 1
    for k in range(3, 2 * num_producers - 2, 2):
        count *= k
    return count


def enumerate_all_plans(producers: list[str]) -> list[LogicalPlan]:
    """All distinct join trees (up to commutativity) over ``producers``.

    Uses the classic recursive split: partition the producer set into
    two non-empty halves (first producer fixed to the left half to kill
    the mirror symmetry), recurse, and combine.
    """
    _check_names(producers)
    if len(producers) > 9:
        raise ValueError(
            "full enumeration beyond 9 producers is intractable; use top_k_plans"
        )
    trees = _all_trees(frozenset(producers))
    return [LogicalPlan(tree) for tree in trees]


def _all_trees(names: frozenset[str]) -> list[PlanNode]:
    if len(names) == 1:
        (only,) = names
        return [LeafNode(only)]
    ordered = sorted(names)
    anchor = ordered[0]
    rest = ordered[1:]
    trees: list[PlanNode] = []
    # Left half always contains the anchor -> each unordered split
    # enumerated exactly once.
    for size in range(0, len(rest)):
        for extra in itertools.combinations(rest, size):
            left_names = frozenset((anchor,) + extra)
            right_names = names - left_names
            if not right_names:
                continue
            for left in _all_trees(left_names):
                for right in _all_trees(right_names):
                    trees.append(JoinNode(left, right))
    return trees


def enumerate_left_deep_plans(producers: list[str]) -> list[LogicalPlan]:
    """All left-deep join trees, deduplicated by plan signature."""
    _check_names(producers)
    if len(producers) == 1:
        return [LogicalPlan(LeafNode(producers[0]))]
    seen: set[str] = set()
    plans: list[LogicalPlan] = []
    for order in itertools.permutations(producers):
        tree: PlanNode = LeafNode(order[0])
        for name in order[1:]:
            tree = JoinNode(tree, LeafNode(name))
        plan = LogicalPlan(tree)
        sig = plan.signature()
        if sig not in seen:
            seen.add(sig)
            plans.append(plan)
    return plans


def top_k_plans(
    producers: list[str],
    stats: Statistics,
    k: int = 5,
    bushy: bool = True,
) -> list[LogicalPlan]:
    """Selinger DP retaining the k cheapest sub-plans per subset.

    The cost used for pruning is the network-oblivious intermediate-rate
    cost; keeping k > 1 alternatives per subset gives the integrated
    optimizer structurally-diverse candidates whose *placed* costs can
    then be compared against real network state.

    Args:
        producers: producer names.
        stats: rate/selectivity statistics for cost-based pruning.
        k: candidates retained per subset (and returned overall).
        bushy: if False, restrict to left-deep trees.

    Returns:
        Up to ``k`` complete plans, cheapest (by oblivious cost) first.
    """
    _check_names(producers)
    if k < 1:
        raise ValueError("k must be >= 1")
    names = sorted(producers)
    if len(names) == 1:
        return [LogicalPlan(LeafNode(names[0]))]

    # best[subset] = list of (oblivious_cost, tree), ascending, len <= k.
    best: dict[frozenset[str], list[tuple[float, PlanNode]]] = {}
    for name in names:
        best[frozenset((name,))] = [(0.0, LeafNode(name))]

    full = frozenset(names)
    for size in range(2, len(names) + 1):
        for subset in map(frozenset, itertools.combinations(names, size)):
            candidates: dict[str, tuple[float, PlanNode]] = {}
            for left_set in _proper_subsets(subset):
                right_set = subset - left_set
                if bushy:
                    # Enumerate each unordered split once.
                    if min(left_set) != min(subset):
                        continue
                else:
                    if len(right_set) != 1:
                        continue
                for left_cost, left_tree in best.get(left_set, []):
                    for right_cost, right_tree in best.get(right_set, []):
                        node = JoinNode(left_tree, right_tree)
                        cost = left_cost + right_cost + node.output_rate(stats)
                        sig = node.signature()
                        existing = candidates.get(sig)
                        if existing is None or cost < existing[0]:
                            candidates[sig] = (cost, node)
            ranked = sorted(candidates.values(), key=lambda t: t[0])
            best[subset] = ranked[:k]

    return [LogicalPlan(tree) for _, tree in best[full]]


def best_plan(
    producers: list[str], stats: Statistics, bushy: bool = True
) -> LogicalPlan:
    """The single cheapest plan by network-oblivious cost (two-step step 1)."""
    return top_k_plans(producers, stats, k=1, bushy=bushy)[0]


def _proper_subsets(names: frozenset[str]):
    """Non-empty proper subsets of a frozenset of names."""
    ordered = sorted(names)
    for size in range(1, len(ordered)):
        for combo in itertools.combinations(ordered, size):
            yield frozenset(combo)


def _check_names(producers: list[str]) -> None:
    if not producers:
        raise ValueError("need at least one producer")
    if len(producers) != len(set(producers)):
        raise ValueError("producer names must be unique")
