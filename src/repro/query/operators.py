"""Service (operator) definitions for SBON circuits.

"Service" generalizes the database operator (§2): any processing code
that can be placed on an in-network node.  This module defines the
built-in relational service kinds and their resource model — how much
CPU load a service induces on its host as a function of the stream
rates flowing through it.  The load feeds the scalar dimension of the
cost space (Figure 2's squared-CPU-load axis).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ServiceKind", "ServiceSpec", "processing_load"]


class ServiceKind(enum.Enum):
    """Built-in service types.

    Attributes:
        JOIN: two-way windowed stream join.
        FILTER: tuple-at-a-time predicate evaluation.
        AGGREGATE: windowed reduction (e.g., avg over a sliding window).
        UNION: order-preserving stream merge.
        RELAY: pure forwarding (placed for routing reasons only).
    """

    JOIN = "join"
    FILTER = "filter"
    AGGREGATE = "aggregate"
    UNION = "union"
    RELAY = "relay"


#: CPU cost coefficients per unit of input rate, by kind.  Joins are the
#: most expensive (state maintenance + probing); relays nearly free.
_LOAD_COEFFICIENTS: dict[ServiceKind, float] = {
    ServiceKind.JOIN: 0.02,
    ServiceKind.FILTER: 0.004,
    ServiceKind.AGGREGATE: 0.008,
    ServiceKind.UNION: 0.002,
    ServiceKind.RELAY: 0.001,
}


@dataclass(frozen=True)
class ServiceSpec:
    """A service's type plus its tunable parameters.

    Attributes:
        kind: the service type.
        selectivity: output/input rate ratio for FILTER services, or the
            join selectivity override for JOIN (None = use statistics).
        window_seconds: state window for JOIN/AGGREGATE (affects memory,
            informational in this model).
        load_coefficient: CPU load per unit input rate; defaults to the
            per-kind table.
    """

    kind: ServiceKind
    selectivity: float | None = None
    window_seconds: float = 60.0
    load_coefficient: float | None = None

    def __post_init__(self) -> None:
        if self.selectivity is not None and not 0 < self.selectivity <= 1:
            raise ValueError("selectivity must be in (0, 1]")
        if self.window_seconds <= 0:
            raise ValueError("window must be positive")
        if self.load_coefficient is not None and self.load_coefficient < 0:
            raise ValueError("load coefficient must be non-negative")

    @property
    def effective_load_coefficient(self) -> float:
        if self.load_coefficient is not None:
            return self.load_coefficient
        return _LOAD_COEFFICIENTS[self.kind]

    @classmethod
    def join(cls, **kwargs) -> "ServiceSpec":
        return cls(ServiceKind.JOIN, **kwargs)

    @classmethod
    def filter(cls, selectivity: float, **kwargs) -> "ServiceSpec":
        return cls(ServiceKind.FILTER, selectivity=selectivity, **kwargs)

    @classmethod
    def aggregate(cls, **kwargs) -> "ServiceSpec":
        return cls(ServiceKind.AGGREGATE, **kwargs)

    @classmethod
    def union(cls, **kwargs) -> "ServiceSpec":
        return cls(ServiceKind.UNION, **kwargs)

    @classmethod
    def relay(cls, **kwargs) -> "ServiceSpec":
        return cls(ServiceKind.RELAY, **kwargs)


def processing_load(spec: ServiceSpec, input_rate: float) -> float:
    """CPU load a service adds to its host at a given total input rate."""
    if input_rate < 0:
        raise ValueError("input rate must be non-negative")
    return spec.effective_load_coefficient * input_rate
