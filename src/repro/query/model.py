"""Stream query model: schemas, producers, consumers, query specs.

The SBON is data-model agnostic (§1); this library uses a relational
stream model because it is the one the paper's running example (a
four-way join over distributed producers, Figure 1) is drawn from.

A :class:`QuerySpec` names a set of *producers* (pinned data sources
with known stream rates), a *consumer* (pinned sink), and the relational
work to perform — joins over all producers, plus optional per-producer
filters and a final aggregate.  Plan generation (``repro.query.generator``)
turns a spec into candidate logical plans; the integrated optimizer
places each candidate into the cost space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StreamSchema", "Producer", "Consumer", "QuerySpec"]


@dataclass(frozen=True)
class StreamSchema:
    """Named, typed attributes of a stream.

    Types are informational strings ("int", "float", "str", ...); the
    optimizer only uses attribute names for join-key matching.
    """

    attributes: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.attributes]
        if len(names) != len(set(names)):
            raise ValueError("duplicate attribute names in schema")

    @classmethod
    def of(cls, **attrs: str) -> "StreamSchema":
        """Build a schema from keyword arguments: ``of(ts="int", v="float")``."""
        return cls(tuple(attrs.items()))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.attributes)

    def has(self, name: str) -> bool:
        return name in self.names

    def merge(self, other: "StreamSchema") -> "StreamSchema":
        """Schema of a join output: union of attributes (first wins on dup)."""
        seen = dict(self.attributes)
        merged = list(self.attributes)
        for name, type_ in other.attributes:
            if name not in seen:
                merged.append((name, type_))
        return StreamSchema(tuple(merged))


@dataclass(frozen=True)
class Producer:
    """A pinned data source.

    Attributes:
        name: unique producer name within a query.
        node: physical node index hosting the source (pinned; "one
            cannot move mountains").
        rate: stream data rate in abstract units (e.g. KB/s).  Rates
            flow through the selectivity model to size circuit links.
        schema: attributes of the produced stream.
    """

    name: str
    node: int
    rate: float
    schema: StreamSchema = StreamSchema.of(ts="int", value="float")

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"producer {self.name} must have positive rate")
        if self.node < 0:
            raise ValueError("producer node index must be non-negative")


@dataclass(frozen=True)
class Consumer:
    """A pinned query sink (the application receiving results)."""

    name: str
    node: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("consumer node index must be non-negative")


@dataclass
class QuerySpec:
    """A continuous query: join all producers, deliver to the consumer.

    Optional per-producer filter selectivities model pushed-down
    predicates; an optional aggregate models a final windowed reduction
    before delivery.  Join selectivities live in
    :class:`repro.query.selectivity.Statistics`, not here, because they
    are properties of the data, shared across queries.

    Attributes:
        name: query identifier.
        producers: the pinned sources (>= 1).
        consumer: the pinned sink.
        filters: optional map producer-name -> filter selectivity (0, 1].
        aggregate_factor: if set, a final aggregate reduces the result
            rate by this factor (0, 1].
    """

    name: str
    producers: list[Producer]
    consumer: Consumer
    filters: dict[str, float] = field(default_factory=dict)
    aggregate_factor: float | None = None

    def __post_init__(self) -> None:
        if not self.producers:
            raise ValueError("query needs at least one producer")
        names = [p.name for p in self.producers]
        if len(names) != len(set(names)):
            raise ValueError("duplicate producer names")
        for pname, sel in self.filters.items():
            if pname not in names:
                raise ValueError(f"filter references unknown producer {pname}")
            if not 0 < sel <= 1:
                raise ValueError(f"filter selectivity {sel} outside (0, 1]")
        if self.aggregate_factor is not None and not 0 < self.aggregate_factor <= 1:
            raise ValueError("aggregate_factor must be in (0, 1]")

    @property
    def producer_names(self) -> list[str]:
        return [p.name for p in self.producers]

    def producer(self, name: str) -> Producer:
        """Look up a producer by name."""
        for p in self.producers:
            if p.name == name:
                return p
        raise KeyError(f"no producer named {name}")

    def effective_rate(self, name: str) -> float:
        """Producer rate after its pushed-down filter (if any)."""
        return self.producer(name).rate * self.filters.get(name, 1.0)

    @property
    def pinned_nodes(self) -> set[int]:
        """All physical nodes this query is pinned to."""
        return {p.node for p in self.producers} | {self.consumer.node}
