"""Selectivity statistics and stream-rate estimation.

Classic optimizers use table summaries to estimate the cost of service
orderings (§2.1).  For continuous queries the analogue is *rate*
estimation: given producer stream rates and pairwise join
selectivities, estimate the output rate of any join subtree.

The model is the standard product form: the output rate of joining two
sub-results ``L`` and ``R`` is::

    rate(L ⋈ R) = rate(L) * rate(R) * Π sel(a, b)   for a ∈ L, b ∈ R

which makes the rate of a producer subset independent of join order —
exactly the property Selinger-style dynamic programming relies on —
while the *intermediate* rates (and hence plan cost) still depend
heavily on the order.

Selectivities drift over time in a long-running query (§3.3); the
:meth:`Statistics.drifted` constructor produces a perturbed copy used by
re-optimization experiments.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

__all__ = ["Statistics", "rate_of_subset"]


@dataclass
class Statistics:
    """Rates and pairwise join selectivities for a set of producers.

    Attributes:
        rates: producer name -> stream rate (post-filter rates should be
            supplied by the caller; see ``QuerySpec.effective_rate``).
        selectivities: unordered pair (a, b) -> join selectivity in
            (0, 1].  Missing pairs default to ``default_selectivity``
            (a cross-product-ish penalty).
        default_selectivity: fallback selectivity for unlisted pairs.
    """

    rates: dict[str, float]
    selectivities: dict[frozenset[str], float] = field(default_factory=dict)
    default_selectivity: float = 1.0

    def __post_init__(self) -> None:
        for name, rate in self.rates.items():
            if rate <= 0:
                raise ValueError(f"rate of {name} must be positive")
        for pair, sel in self.selectivities.items():
            if len(pair) != 2:
                raise ValueError(f"selectivity key {set(pair)} is not a pair")
            if not 0 < sel <= 1:
                raise ValueError(f"selectivity {sel} outside (0, 1]")
        if not 0 < self.default_selectivity <= 1:
            raise ValueError("default_selectivity outside (0, 1]")

    @classmethod
    def build(
        cls,
        rates: dict[str, float],
        pair_selectivities: dict[tuple[str, str], float] | None = None,
        default_selectivity: float = 1.0,
    ) -> "Statistics":
        """Convenience constructor taking ordered-pair keys."""
        sels = {
            frozenset(pair): value
            for pair, value in (pair_selectivities or {}).items()
        }
        return cls(dict(rates), sels, default_selectivity)

    @classmethod
    def random(
        cls,
        names: list[str],
        rate_bounds: tuple[float, float] = (1.0, 20.0),
        selectivity_bounds: tuple[float, float] = (0.01, 0.5),
        seed: int = 0,
    ) -> "Statistics":
        """Random statistics for workload generation (log-uniform sel)."""
        rng = random.Random(seed)
        rates = {name: rng.uniform(*rate_bounds) for name in names}
        sels: dict[frozenset[str], float] = {}
        low, high = selectivity_bounds
        if not 0 < low <= high <= 1:
            raise ValueError("invalid selectivity bounds")
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                log_sel = rng.uniform(math.log(low), math.log(high))
                sels[frozenset((a, b))] = math.exp(log_sel)
        return cls(rates, sels)

    def rate(self, name: str) -> float:
        """Stream rate of a single producer."""
        if name not in self.rates:
            raise KeyError(f"no statistics for producer {name}")
        return self.rates[name]

    def selectivity(self, a: str, b: str) -> float:
        """Join selectivity between two producers' streams."""
        if a == b:
            raise ValueError("selectivity of a producer with itself is undefined")
        return self.selectivities.get(frozenset((a, b)), self.default_selectivity)

    def with_rate(self, name: str, rate: float) -> "Statistics":
        """Copy with one producer's rate replaced."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        rates = dict(self.rates)
        rates[name] = rate
        return Statistics(rates, dict(self.selectivities), self.default_selectivity)

    def drifted(self, relative_sigma: float = 0.3, seed: int = 0) -> "Statistics":
        """Copy with log-normal noise on rates and selectivities.

        Models the selectivity drift of a maturing circuit (§3.3) that
        triggers full re-optimization.
        """
        rng = random.Random(seed)

        def jitter(value: float, cap: float | None = None) -> float:
            factor = math.exp(rng.gauss(0.0, relative_sigma))
            out = value * factor
            if cap is not None:
                out = min(out, cap)
            return max(out, 1e-6)

        rates = {name: jitter(rate) for name, rate in self.rates.items()}
        sels = {
            pair: jitter(sel, cap=1.0) for pair, sel in self.selectivities.items()
        }
        return Statistics(rates, sels, self.default_selectivity)


def rate_of_subset(stats: Statistics, names: frozenset[str] | set[str]) -> float:
    """Estimated output rate of the join of all producers in ``names``.

    Product-form model: product of member rates times the product of
    selectivities over every unordered pair inside the subset.
    """
    members = sorted(names)
    if not members:
        raise ValueError("subset must be non-empty")
    rate = 1.0
    for name in members:
        rate *= stats.rate(name)
    for i, a in enumerate(members):
        for b in members[i + 1 :]:
            rate *= stats.selectivity(a, b)
    return rate
