"""Query substrate: stream model, statistics, logical plans, enumeration.

Provides the relational stream-query model (producers, consumer, join
queries), the rate/selectivity estimation used for cost-based pruning,
logical plan trees, and the plan-generation strategies (full
enumeration, left-deep, Selinger-style top-k dynamic programming).
"""

from repro.query.generator import (
    best_plan,
    count_all_plans,
    enumerate_all_plans,
    enumerate_left_deep_plans,
    top_k_plans,
)
from repro.query.model import Consumer, Producer, QuerySpec, StreamSchema
from repro.query.operators import ServiceKind, ServiceSpec, processing_load
from repro.query.plan import JoinNode, LeafNode, LogicalPlan, PlanNode
from repro.query.selectivity import Statistics, rate_of_subset

__all__ = [
    "best_plan",
    "count_all_plans",
    "enumerate_all_plans",
    "enumerate_left_deep_plans",
    "top_k_plans",
    "Consumer",
    "Producer",
    "QuerySpec",
    "StreamSchema",
    "ServiceKind",
    "ServiceSpec",
    "processing_load",
    "JoinNode",
    "LeafNode",
    "LogicalPlan",
    "PlanNode",
    "Statistics",
    "rate_of_subset",
]
