"""Logical query plans: binary join trees over producers.

A logical plan (§2.1) contains the identity and order of services used
to answer a query.  For a join query the plan is a binary tree whose
leaves are producers and whose internal nodes are two-way join services
(the paper's Figure 1 decomposes a four-way join into three two-way
joins).  Internal nodes are the *unpinned services* of the resulting
circuit; leaves and the root's consumer are pinned.

Plans compute their intermediate rates through the product-form
selectivity model, and expose a network-oblivious cost (total
intermediate data rate) used by the classic two-step baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.query.selectivity import Statistics, rate_of_subset

__all__ = ["PlanNode", "LeafNode", "JoinNode", "LogicalPlan"]


class PlanNode:
    """Base class for plan-tree nodes."""

    @property
    def producers(self) -> frozenset[str]:
        """Names of producers under this subtree."""
        raise NotImplementedError

    def output_rate(self, stats: Statistics) -> float:
        """Estimated stream rate leaving this node."""
        raise NotImplementedError

    def internal_nodes(self) -> list["JoinNode"]:
        """All join nodes in this subtree, children before parents."""
        raise NotImplementedError

    def leaves(self) -> list["LeafNode"]:
        """All leaves in left-to-right order."""
        raise NotImplementedError

    def signature(self) -> str:
        """Canonical string identifying the tree shape up to child swap.

        Join is commutative, so ``(A ⋈ B)`` and ``(B ⋈ A)`` get the same
        signature; plan enumeration uses this for deduplication.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class LeafNode(PlanNode):
    """A plan leaf: one producer stream (optionally pre-filtered)."""

    producer: str

    @property
    def producers(self) -> frozenset[str]:
        return frozenset((self.producer,))

    def output_rate(self, stats: Statistics) -> float:
        return stats.rate(self.producer)

    def internal_nodes(self) -> list["JoinNode"]:
        return []

    def leaves(self) -> list["LeafNode"]:
        return [self]

    def signature(self) -> str:
        return self.producer

    def __str__(self) -> str:
        return self.producer


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """A two-way join service over two subtrees."""

    left: PlanNode
    right: PlanNode

    def __post_init__(self) -> None:
        overlap = self.left.producers & self.right.producers
        if overlap:
            raise ValueError(f"join children share producers {sorted(overlap)}")

    @property
    def producers(self) -> frozenset[str]:
        return self.left.producers | self.right.producers

    def output_rate(self, stats: Statistics) -> float:
        return rate_of_subset(stats, self.producers)

    def input_rate(self, stats: Statistics) -> float:
        """Combined rate arriving at this join from both children."""
        return self.left.output_rate(stats) + self.right.output_rate(stats)

    def internal_nodes(self) -> list["JoinNode"]:
        return self.left.internal_nodes() + self.right.internal_nodes() + [self]

    def leaves(self) -> list[LeafNode]:
        return self.left.leaves() + self.right.leaves()

    def signature(self) -> str:
        left_sig = self.left.signature()
        right_sig = self.right.signature()
        first, second = sorted((left_sig, right_sig))
        return f"({first}*{second})"

    def __str__(self) -> str:
        return f"({self.left} ⋈ {self.right})"


@dataclass(frozen=True)
class LogicalPlan:
    """A complete logical plan: a join tree delivering to the consumer.

    Attributes:
        root: the plan tree (a single leaf for one-producer queries).
    """

    root: PlanNode

    @cached_property
    def producers(self) -> frozenset[str]:
        return self.root.producers

    @property
    def num_services(self) -> int:
        """Number of unpinned (join) services in the plan."""
        return len(self.root.internal_nodes())

    def is_left_deep(self) -> bool:
        """True if every join's right child is a leaf (or it's a leaf plan)."""
        node = self.root
        while isinstance(node, JoinNode):
            if not isinstance(node.right, LeafNode):
                return False
            node = node.left
        return isinstance(node, LeafNode)

    def intermediate_rate_cost(self, stats: Statistics) -> float:
        """Network-oblivious plan cost: sum of all intermediate rates.

        This is the classic "minimize intermediate results" objective a
        traditional plan generator optimizes before ever looking at the
        network — the first step of the two-step baseline (§2.3).
        """
        return sum(
            node.output_rate(stats) for node in self.root.internal_nodes()
        )

    def signature(self) -> str:
        """Canonical identity of the plan shape (commutative joins)."""
        return self.root.signature()

    def __str__(self) -> str:
        return str(self.root)
