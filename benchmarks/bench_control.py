"""E19 — the control plane: vectorized controller + reliable transport.

One closed-loop tick is (data-plane step → controller step): the data
plane executes every circuit with the reliable transport's retransmit
buffer armed, then the controller ingests the tick's measured per-link
and per-node statistics into its EWMA estimator banks and (on cadence)
calibrates the circuits' estimated link rates from the measurements.
This benchmark times that combined tick on the E18 traffic overlay
(1000 nodes / 100 circuits) through the batched kernels
(``DataPlane.step`` + ``Controller.step``) versus the retained
per-tuple / per-key references (``step_scalar`` twins consuming
identical inputs) and asserts the ≥10× speedup floor.

A node-outage window during warm-up forces real retransmissions, and
the *extended* conservation balance is asserted at every tick::

    sent == delivered + in_flight + buffered

Set ``BENCH_QUICK=1`` for the small CI smoke sizes.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np

from _harness import report, write_bench_json
from bench_dataplane import DP_CIRCUITS, DP_NODES, _traffic_overlay
from repro.control import ControlConfig, Controller
from repro.runtime import DataPlane, RuntimeConfig

QUICK = os.environ.get("BENCH_QUICK", "") == "1"
WARMUP_TICKS = 12 if QUICK else 25
TIMED_TICKS = 3
#: Quick mode shrinks the Python-loop / kernel gap; assert less there.
CTRL_SPEEDUP_FLOOR = 2.0 if QUICK else 10.0
#: Hosts of unpinned services go dark over these warm-up ticks, so the
#: retransmit buffer actually fills and redelivers.
OUTAGE = range(4, 9)


def _assert_records_equal(rv, rs) -> None:
    """Integer traffic counters exact; usage to float-reduction noise."""
    fields = (
        "tick", "emitted", "delivered", "dropped", "processed",
        "in_flight", "shed", "redelivered", "buffered",
    )
    assert all(getattr(rv, f) == getattr(rs, f) for f in fields), (rv, rs)
    assert abs(rv.usage - rs.usage) <= 1e-9 * max(abs(rs.usage), 1.0), (rv, rs)


def _twin(seed: int = 3):
    overlay = _traffic_overlay()
    plane = DataPlane(
        overlay, RuntimeConfig(seed=seed, reliable=True, retransmit_buffer=1 << 16)
    )
    controller = Controller(
        plane, ControlConfig(warmup=4, calibrate_interval=3, drop_threshold=None)
    )
    unpinned_hosts = sorted(
        {
            c.host_of(s)
            for c in overlay.circuits.values()
            for s in c.unpinned_ids()
        }
    )
    outage_nodes = unpinned_hosts[: max(1, len(unpinned_hosts) // 4)]
    return overlay, plane, controller, outage_nodes


def _apply_liveness(overlay, outage_nodes, tick: int) -> None:
    mask = np.ones(overlay.num_nodes, dtype=bool)
    if tick in OUTAGE:
        mask[outage_nodes] = False
    overlay.apply_liveness(mask)


@lru_cache(maxsize=1)
def control_tick_timings() -> tuple[float, float, int, int]:
    """(scalar s, vectorized s, tuples/tick, redelivered) on twin loops.

    Both twins ride identical RNG streams and liveness schedules
    through their own step paths; the per-tick traffic records are
    asserted equal and the extended conservation balance is asserted
    every tick, so the timed work is identical by construction.
    """
    ov_f, fast, ctl_f, outage_f = _twin()
    ov_s, slow, ctl_s, outage_s = _twin()
    assert outage_f == outage_s
    for tick in range(WARMUP_TICKS):
        _apply_liveness(ov_f, outage_f, tick)
        _apply_liveness(ov_s, outage_s, tick)
        rv = fast.step()
        ctl_f.step(rv)
        rs = slow.step_scalar()
        ctl_s.step_scalar(rs)
        _assert_records_equal(rv, rs)
        assert fast.accounting()["balanced"] and slow.accounting()["balanced"]
    assert fast.redelivered > 0, "outage never exercised the retransmit buffer"

    t0 = time.perf_counter()
    fast_records = []
    for _ in range(TIMED_TICKS):
        record = fast.step()
        ctl_f.step(record)
        fast_records.append(record)
    t_vector = (time.perf_counter() - t0) / TIMED_TICKS
    t0 = time.perf_counter()
    slow_records = []
    for _ in range(TIMED_TICKS):
        record = slow.step_scalar()
        ctl_s.step_scalar(record)
        slow_records.append(record)
    t_scalar = (time.perf_counter() - t0) / TIMED_TICKS

    for rv, rs in zip(fast_records, slow_records):
        _assert_records_equal(rv, rs)
    acct_f, acct_s = fast.accounting(), slow.accounting()
    assert acct_f == acct_s
    assert acct_f["balanced"]
    assert acct_f["sent"] == (
        acct_f["transport_delivered"] + acct_f["in_flight"] + acct_f["buffered"]
    )
    # The twin controllers made bit-identical estimates and decisions.
    np.testing.assert_array_equal(
        ctl_f.link_rates.rates(ctl_f.link_rates.keys()),
        ctl_s.link_rates.rates(ctl_f.link_rates.keys()),
    )
    assert ctl_f.calibrations == ctl_s.calibrations > 0
    per_tick = int(np.mean([r.processed + r.emitted for r in fast_records]))
    return t_scalar, t_vector, per_tick, fast.redelivered


def test_report_control_tick():
    t_scalar, t_vector, per_tick, redelivered = control_tick_timings()
    rows = [
        [
            f"closed-loop tick ({DP_CIRCUITS} circuits, ~{per_tick} tuples, "
            f"{redelivered} retransmitted)",
            DP_NODES,
            t_scalar * 1e3,
            t_vector * 1e3,
            t_scalar / t_vector,
        ]
    ]
    report(
        "E19",
        "Control plane: per-key/per-tuple references vs batched "
        "controller + reliable transport" + (" [quick]" if QUICK else ""),
        ["kernel", "n", "scalar ms", "vectorized ms", "speedup"],
        rows,
    )
    write_bench_json(
        "E19",
        [
            {
                "op": "control_tick",
                "n": DP_NODES,
                "circuits": DP_CIRCUITS,
                "tuples_per_tick": per_tick,
                "redelivered": redelivered,
                "before_s": t_scalar,
                "after_s": t_vector,
                "speedup": t_scalar / t_vector,
            }
        ],
        quick=QUICK,
    )
    assert t_scalar / t_vector >= CTRL_SPEEDUP_FLOOR


def test_closed_loop_recovery_floor():
    """The acceptance demo: ≥30% of the stale-estimate gap recovered.

    Under the selectivity-drift scenario the measured-rate controller
    must close at least 30% of the measured-usage gap between the
    stale-estimate baseline and the true-rate oracle (it typically
    closes ≈ all of it).
    """
    from repro.workloads.scenarios import closed_loop_recovery

    result = closed_loop_recovery(
        ticks=70 if QUICK else 90,
        eval_window=20 if QUICK else 25,
        seed=0,
        num_nodes=36 if QUICK else 48,
        num_chains=4 if QUICK else 6,
    )
    assert result["baseline"] > result["oracle"], result
    assert result["recovery"] >= 0.3, result
