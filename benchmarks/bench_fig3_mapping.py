"""E3 / Figure 3 — virtual placement + physical mapping.

Part (a) reproduces the figure exactly: one unpinned service between
two producers and a consumer; the latency-nearest node N1 is overloaded,
so the full-cost-space mapping selects the lightly loaded N2.

Part (b) quantifies the *mapping error* — the distance between the
ideal (virtual) coordinate and the chosen physical node — as node
density grows, normalized by the mean inter-node latency.  The paper
claims this error "remains small for realistic topologies".
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from _harness import report
from repro.core.coordinates import CostCoordinate
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.optimizer import IntegratedOptimizer
from repro.core.physical_mapping import ExhaustiveMapper
from repro.network.latency import LatencyMatrix
from repro.network.topology import random_geometric_topology
from repro.network.vivaldi import embed_latency_matrix
from repro.workloads.scenarios import figure3_scenario

DENSITIES = [25, 50, 100, 200, 400]
TARGETS_PER_DENSITY = 200


@lru_cache(maxsize=1)
def figure3_result():
    sc = figure3_scenario()
    result = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
    sid = result.circuit.unpinned_ids()[0]
    return sc, result, sid


@lru_cache(maxsize=1)
def density_sweep():
    rows = []
    for n in DENSITIES:
        topo = random_geometric_topology(n, radius=0.25, seed=n)
        latencies = LatencyMatrix.from_topology(topo)
        embedding = embed_latency_matrix(
            latencies, dimensions=2, rounds=30, neighbors_per_round=4, seed=n
        )
        space = CostSpace.from_embedding(
            CostSpaceSpec.latency_only(vector_dims=2), embedding.coordinates
        )
        mapper = ExhaustiveMapper(space)
        vectors = space.vector_matrix()
        lows, highs = vectors.min(axis=0), vectors.max(axis=0)
        rng = np.random.default_rng(n)
        errors = []
        for _ in range(TARGETS_PER_DENSITY):
            target = CostCoordinate(tuple(rng.uniform(lows, highs)))
            node, _ = mapper.map_coordinate(target)
            errors.append(target.distance_to(space.coordinate(node)))
        mean_latency = latencies.mean_latency()
        rows.append(
            [
                n,
                float(np.mean(errors)),
                float(np.percentile(errors, 95)),
                mean_latency,
                float(np.mean(errors) / mean_latency),
            ]
        )
    return rows


def test_report_figure3(benchmark):
    sc, result, sid = figure3_result()
    optimizer = IntegratedOptimizer(sc.cost_space)
    benchmark(optimizer.optimize, sc.query, sc.stats)

    chosen = result.circuit.host_of(sid)
    target = CostCoordinate(tuple(sc.star), (0.0,))
    n1, n2 = sc.cost_space.coordinate(sc.n1), sc.cost_space.coordinate(sc.n2)
    report(
        "E3a",
        "Figure 3: mapping with a load dimension (star = ideal coordinate)",
        ["candidate", "latency dist to star", "full-space dist to star", "chosen"],
        [
            ["N1 (loaded 0.9)", target.vector_distance_to(n1),
             target.distance_to(n1), "yes" if chosen == sc.n1 else "no"],
            ["N2 (idle 0.05)", target.vector_distance_to(n2),
             target.distance_to(n2), "yes" if chosen == sc.n2 else "no"],
        ],
    )
    assert chosen == sc.n2

    rows = density_sweep()
    report(
        "E3b",
        "Mapping error vs node density (geometric topologies, 2-D latency space)",
        ["nodes", "mean error (ms)", "p95 error (ms)", "mean latency (ms)",
         "error / mean latency"],
        rows,
    )
    # "Error remains small": under 35% of mean latency at >= 100 nodes.
    for row in rows:
        if row[0] >= 100:
            assert row[4] < 0.35


def test_exhaustive_mapping_speed_400_nodes(benchmark):
    rows = density_sweep()  # warm cache
    del rows
    topo = random_geometric_topology(400, radius=0.25, seed=400)
    latencies = LatencyMatrix.from_topology(topo)
    embedding = embed_latency_matrix(latencies, dimensions=2, rounds=10, seed=1)
    space = CostSpace.from_embedding(
        CostSpaceSpec.latency_only(vector_dims=2), embedding.coordinates
    )
    mapper = ExhaustiveMapper(space)
    target = CostCoordinate(tuple(space.vector_matrix().mean(axis=0)))
    benchmark(mapper.map_coordinate, target)
