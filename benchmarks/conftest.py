"""Benchmark-suite conftest: emit experiment tables after the run."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import RESULTS_DIR  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every persisted experiment table at the end of the run."""
    if not RESULTS_DIR.exists():
        return
    reports = sorted(RESULTS_DIR.glob("*.txt"))
    if not reports:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 70)
    terminalreporter.write_line("EXPERIMENT TABLES (paper-shaped outputs)")
    terminalreporter.write_line("=" * 70)
    for path in reports:
        terminalreporter.write_line(path.read_text())
