"""E10 — the decentralized catalog substrate (Chord + Hilbert).

§3.2's physical mapping relies on two properties this experiment
verifies quantitatively:

  (a) Chord lookups cost O(log n) hops — mean hops ≈ ½·log2(n);
  (b) the Hilbert curve preserves locality far better than the Z-order
      (Morton) baseline, measured by the mean/max spatial jump between
      consecutive curve indices and by catalog nearest-neighbor
      accuracy;
  (c) the catalog's nearest-node answers match the exhaustive ground
      truth almost always at modest scan widths.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from _harness import report
from repro.dht.catalog import CoordinateCatalog
from repro.dht.chord import ChordRing
from repro.dht.hilbert import HilbertMapper, hilbert_decode, morton_decode

RING_SIZES = [16, 64, 256, 1024]
LOOKUPS = 300


@lru_cache(maxsize=1)
def hop_scaling():
    rows = []
    for n in RING_SIZES:
        ring = ChordRing(id_bits=24)
        for i in range(n):
            ring.join(name=f"node-{i}")
        rng = np.random.default_rng(n)
        origins = ring.node_ids
        hops = []
        for _ in range(LOOKUPS):
            key = int(rng.integers(0, 1 << 24))
            origin = origins[int(rng.integers(0, len(origins)))]
            hops.append(ring.lookup(key, origin=origin).hops)
        rows.append(
            [n, float(np.mean(hops)), int(np.max(hops)),
             0.5 * math.log2(n)]
        )
    return rows


@lru_cache(maxsize=1)
def curve_locality():
    rows = []
    bits, dims = 5, 2
    for name, decode in (("hilbert", hilbert_decode), ("morton", morton_decode)):
        jumps = []
        prev = decode(0, bits, dims)
        for index in range(1, 1 << (bits * dims)):
            cur = decode(index, bits, dims)
            jumps.append(sum(abs(a - b) for a, b in zip(prev, cur)))
            prev = cur
        rows.append([name, float(np.mean(jumps)), int(np.max(jumps))])
    return rows


@lru_cache(maxsize=1)
def catalog_accuracy():
    mapper = HilbertMapper(lows=(0.0, 0.0), highs=(100.0, 100.0), bits=9)
    catalog = CoordinateCatalog(mapper, ring_size=64)
    rng = np.random.default_rng(9)
    points = rng.uniform(0, 100, size=(120, 2))
    for node, point in enumerate(points):
        catalog.publish(node, point)
    rows = []
    for scan_width in (2, 4, 8, 16):
        correct = 0
        scanned = []
        for i in range(LOOKUPS):
            query = rng.uniform(0, 100, size=2)
            approx, stats = catalog.nearest(query, scan_width=scan_width)
            exact = catalog.exhaustive_nearest(query)
            if approx.physical_node == exact.physical_node:
                correct += 1
            scanned.append(stats.ring_entries_scanned)
        rows.append(
            [scan_width, f"{100 * correct / LOOKUPS:.1f}%", float(np.mean(scanned))]
        )
    return rows


def test_report_dht(benchmark):
    ring = ChordRing(id_bits=24)
    for i in range(256):
        ring.join(name=f"node-{i}")
    benchmark(ring.lookup, 12345678)

    report(
        "E10a",
        "Chord lookup hops vs ring size (theory: ~0.5*log2 n)",
        ["nodes", "mean hops", "max hops", "0.5*log2(n)"],
        hop_scaling(),
    )
    report(
        "E10b",
        "Space-filling curve locality (5-bit, 2-D grid; jump = |Δcell| L1)",
        ["curve", "mean jump", "max jump"],
        curve_locality(),
    )
    report(
        "E10c",
        "Catalog nearest-node accuracy vs scan width (120 published nodes)",
        ["scan width", "accuracy vs exhaustive", "ring entries scanned (mean)"],
        catalog_accuracy(),
    )
    # O(log n) shape: mean hops within 2x of theory.
    for n, mean_hops, _, theory in hop_scaling():
        assert mean_hops <= 2 * theory + 1
    # Hilbert: every jump is 1; Morton jumps.
    locality = {row[0]: row for row in curve_locality()}
    assert locality["hilbert"][2] == 1
    assert locality["morton"][2] > 1
    # Accuracy is monotone in scan width and high at 8+.
    acc = [float(row[1].rstrip("%")) for row in catalog_accuracy()]
    assert acc[-1] >= acc[0]
    assert acc[2] >= 85.0


def test_catalog_publish_speed(benchmark):
    mapper = HilbertMapper(lows=(0.0, 0.0), highs=(100.0, 100.0), bits=9)
    catalog = CoordinateCatalog(mapper, ring_size=64)
    counter = iter(range(10_000_000))

    def publish():
        catalog.publish(next(counter), [50.0, 50.0])

    benchmark(publish)


def test_hilbert_encode_speed(benchmark):
    mapper = HilbertMapper(lows=(0.0, 0.0, 0.0), highs=(1.0, 1.0, 1.0), bits=10)
    benchmark(mapper.key_for, [0.3, 0.7, 0.5])
