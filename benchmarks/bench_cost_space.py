"""E16 — array-backed cost space + vectorized placement kernels.

Before/after evidence for the struct-of-arrays refactor: the retained
scalar reference implementations (per-node / per-service Python loops)
versus the vectorized production paths, measured on the same inputs.

* ``nearest_node`` / ``nodes_within`` throughput at n ∈ {100, 1k, 10k}.
* Relaxation virtual placement of a 200-unpinned-service circuit.

Set ``BENCH_QUICK=1`` to shrink sizes for CI smoke runs.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np

from _harness import report, write_bench_json
from repro.core.circuit import Circuit, Service
from repro.core.coordinates import CostCoordinate
from repro.core.cost_space import (
    CostSpace,
    CostSpaceSpec,
    nearest_node_scalar,
    nodes_within_scalar,
)
from repro.core import virtual_placement as vp
from repro.core.weighting import squared
from repro.query.operators import ServiceSpec

QUICK = os.environ.get("BENCH_QUICK", "") == "1"
SIZES = [100, 1000] if QUICK else [100, 1000, 10000]
PLACEMENT_SERVICES = 50 if QUICK else 200
QUERIES_PER_SIZE = {100: 200, 1000: 50, 10000: 10}


def _timed(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@lru_cache(maxsize=None)
def _space(n: int) -> CostSpace:
    rng = np.random.default_rng(n)
    spec = CostSpaceSpec.latency_load(vector_dims=2, load_weighting=squared(100.0))
    embedding = rng.uniform(0.0, 200.0, size=(n, 2))
    loads = rng.uniform(0.0, 1.0, size=n)
    return CostSpace.from_embedding(spec, embedding, {"cpu_load": loads})


def _query_targets(n: int, count: int) -> list[CostCoordinate]:
    rng = np.random.default_rng(n + 1)
    return [
        CostCoordinate(
            (float(rng.uniform(0, 200)), float(rng.uniform(0, 200))), (0.0,)
        )
        for _ in range(count)
    ]


@lru_cache(maxsize=None)
def _placement_circuit(
    num_services: int,
) -> tuple[Circuit, tuple[tuple[str, tuple[float, float]], ...]]:
    """A join chain of ``num_services`` unpinned services over 8 anchors."""
    rng = np.random.default_rng(7)
    anchors = 8
    circuit = Circuit(name="bench")
    pinned: list[tuple[str, tuple[float, float]]] = []
    for a in range(anchors):
        sid = f"bench/p{a}"
        circuit.add_service(
            Service(sid, ServiceSpec.relay(), pinned_node=a, producers=frozenset((f"P{a}",)))
        )
        pinned.append((sid, (float(rng.uniform(0, 200)), float(rng.uniform(0, 200)))))
    prev = "bench/p0"
    for i in range(num_services):
        sid = f"bench/s{i}"
        circuit.add_service(
            Service(
                sid,
                ServiceSpec.join(),
                pinned_node=None,
                producers=frozenset((f"P{i % anchors}", f"Q{i}")),
            )
        )
        circuit.add_link(prev, sid, float(rng.uniform(0.5, 10.0)))
        circuit.add_link(
            f"bench/p{int(rng.integers(anchors))}", sid, float(rng.uniform(0.5, 10.0))
        )
        prev = sid
    circuit.add_link(prev, "bench/p1", float(rng.uniform(0.5, 10.0)))
    return circuit, tuple(pinned)


def _relaxation_scalar(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
    max_iterations: int = 400,
    tolerance: float = 1e-4,
) -> tuple[dict[str, np.ndarray], int]:
    """Reference relaxation loop driven by the scalar sweep."""
    positions, unpinned = vp._pinned_and_unpinned(circuit, pinned_positions)
    center = np.mean([positions[sid] for sid in circuit.pinned_ids()], axis=0)
    positions.update({sid: center.copy() for sid in unpinned})
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        move = vp.sweep_scalar(circuit, positions, unpinned, True, False)
        if move < tolerance:
            break
    return {sid: positions[sid] for sid in unpinned}, iterations


@lru_cache(maxsize=1)
def cost_space_table() -> tuple[list[list], float, float]:
    rows: list[list] = []
    nearest_speedups: dict[int, float] = {}
    for n in SIZES:
        space = _space(n)
        targets = _query_targets(n, QUERIES_PER_SIZE[n])
        radius = 60.0

        def scalar_nearest():
            for t in targets:
                nearest_node_scalar(space, t)

        def vector_nearest():
            for t in targets:
                space.nearest_node(t)

        def scalar_within():
            for t in targets:
                nodes_within_scalar(space, t, radius)

        def vector_within():
            for t in targets:
                space.nodes_within(t, radius)

        t_sn = _timed(scalar_nearest) / len(targets)
        t_vn = _timed(vector_nearest) / len(targets)
        t_sw = _timed(scalar_within) / len(targets)
        t_vw = _timed(vector_within) / len(targets)
        nearest_speedups[n] = t_sn / t_vn
        rows.append(
            ["nearest_node", n, t_sn * 1e3, t_vn * 1e3, t_sn / t_vn]
        )
        rows.append(
            ["nodes_within", n, t_sw * 1e3, t_vw * 1e3, t_sw / t_vw]
        )

    circuit, pinned = _placement_circuit(PLACEMENT_SERVICES)
    pinned_positions = {sid: np.asarray(p) for sid, p in pinned}
    t_scalar = _timed(lambda: _relaxation_scalar(circuit, pinned_positions), repeats=2)
    t_vector = _timed(lambda: vp.relaxation_placement(circuit, pinned_positions), repeats=2)
    placement_speedup = t_scalar / t_vector
    rows.append(
        [
            f"relaxation ({PLACEMENT_SERVICES} services)",
            PLACEMENT_SERVICES,
            t_scalar * 1e3,
            t_vector * 1e3,
            placement_speedup,
        ]
    )
    return rows, nearest_speedups[max(SIZES)], placement_speedup


def test_report_vectorized_speedups():
    rows, nearest_speedup, placement_speedup = cost_space_table()
    report(
        "E16",
        "Array-backed cost space: scalar reference vs vectorized kernels"
        + (" [quick]" if QUICK else ""),
        ["kernel", "n", "scalar ms/op", "vectorized ms/op", "speedup"],
        rows,
    )
    write_bench_json(
        "E16",
        [
            {
                "op": str(row[0]),
                "n": int(row[1]),
                "before_s": float(row[2]) / 1e3,
                "after_s": float(row[3]) / 1e3,
                "speedup": float(row[4]),
            }
            for row in rows
        ],
        quick=QUICK,
    )
    # Acceptance: ≥10× on the largest nearest_node sweep and on the
    # relaxation placement (both are far beyond 10× in practice).
    assert nearest_speedup >= 10.0
    assert placement_speedup >= 10.0


def test_vectorized_placement_matches_scalar_reference():
    circuit, pinned = _placement_circuit(PLACEMENT_SERVICES)
    pinned_positions = {sid: np.asarray(p) for sid, p in pinned}
    scalar_positions, scalar_iters = _relaxation_scalar(circuit, pinned_positions)
    placement = vp.relaxation_placement(circuit, pinned_positions)
    assert placement.iterations == scalar_iters
    for sid, pos in scalar_positions.items():
        assert np.allclose(placement.position_of(sid), pos, atol=1e-9)


def test_nearest_nodes_batch_throughput(benchmark):
    space = _space(SIZES[-1])
    targets = _query_targets(SIZES[-1], QUERIES_PER_SIZE[SIZES[-1]])
    matrix = np.array([t.full_array() for t in targets])
    nodes = benchmark(space.nearest_nodes, matrix)
    assert len(nodes) == len(targets)


def test_relaxation_placement_speed(benchmark):
    circuit, pinned = _placement_circuit(PLACEMENT_SERVICES)
    pinned_positions = {sid: np.asarray(p) for sid, p in pinned}
    placement = benchmark(vp.relaxation_placement, circuit, pinned_positions)
    assert len(placement.positions) == PLACEMENT_SERVICES
