"""E1 / Figure 1 — integrated vs two-step optimization.

Reproduces the paper's Figure 1 claim: separating plan generation from
service placement picks Query Plan 1 (cross-cluster join pairing) and
loses to the integrated optimizer, which virtually places every
candidate plan and discovers that Query Plan 2 (intra-cluster pairing)
yields lower total data latency.

Two parts:
  (a) the exact Figure 1 scenario — reports each optimizer's plan and
      true network usage;
  (b) a generalization sweep — random clustered 4-producer queries on a
      transit-stub network; reports win rate and cost ratios of
      two-step and random against integrated.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from _harness import report
from repro.core.costs import GroundTruthEvaluator
from repro.core.optimizer import IntegratedOptimizer, RandomOptimizer, TwoStepOptimizer
from repro.network.topology import TransitStubParams, transit_stub_topology
from repro.sbon.overlay import Overlay
from repro.workloads.queries import WorkloadParams, random_query
from repro.workloads.scenarios import figure1_scenario

SWEEP_INSTANCES = 40
SWEEP_TOPOLOGY = TransitStubParams(
    num_transit_domains=3,
    transit_nodes_per_domain=4,
    stub_domains_per_transit_node=3,
    nodes_per_stub_domain=4,
)  # 12 + 12*3*4 = 156 nodes


@lru_cache(maxsize=1)
def scenario_results():
    sc = figure1_scenario()
    gt = GroundTruthEvaluator(sc.latencies)
    integ = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
    two = TwoStepOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
    return {
        "integrated": (str(integ.plan), gt.evaluate(integ.circuit).network_usage),
        "two-step": (str(two.plan), gt.evaluate(two.circuit).network_usage),
    }


@lru_cache(maxsize=1)
def sweep_overlay() -> Overlay:
    topo = transit_stub_topology(SWEEP_TOPOLOGY, seed=1)
    return Overlay.build(topo, vector_dims=2, embedding_rounds=40, seed=1)


@lru_cache(maxsize=1)
def sweep_results():
    overlay = sweep_overlay()
    gt = GroundTruthEvaluator(overlay.latencies)
    params = WorkloadParams(num_producers=4, clustered=True, cluster_span=30)
    ratios_two, ratios_rand = [], []
    wins_two = ties = 0
    for seed in range(SWEEP_INSTANCES):
        query, stats = random_query(overlay.num_nodes, params, seed=seed)
        integ = overlay.integrated_optimizer().optimize(query, stats)
        two = overlay.two_step_optimizer().optimize(query, stats)
        rand = overlay.random_optimizer(seed=seed).optimize(query, stats)
        u_i = gt.evaluate(integ.circuit).network_usage
        u_t = gt.evaluate(two.circuit).network_usage
        u_r = gt.evaluate(rand.circuit).network_usage
        if u_i > 0:
            ratios_two.append(u_t / u_i)
            ratios_rand.append(u_r / u_i)
        if u_i < u_t - 1e-9:
            wins_two += 1
        elif abs(u_i - u_t) <= 1e-9:
            ties += 1
    return {
        "instances": SWEEP_INSTANCES,
        "wins": wins_two,
        "ties": ties,
        "two_step_ratio_mean": float(np.mean(ratios_two)),
        "two_step_ratio_p90": float(np.percentile(ratios_two, 90)),
        "random_ratio_mean": float(np.mean(ratios_rand)),
    }


def test_report_figure1(benchmark):
    sc = figure1_scenario()
    optimizer = IntegratedOptimizer(sc.cost_space)
    benchmark(optimizer.optimize, sc.query, sc.stats)

    res = scenario_results()
    sweep = sweep_results()
    report(
        "E1a",
        "Figure 1 scenario: plan choice and true network usage",
        ["optimizer", "plan", "network usage (rate*ms)"],
        [
            ["integrated", res["integrated"][0], res["integrated"][1]],
            ["two-step", res["two-step"][0], res["two-step"][1]],
        ],
    )
    report(
        "E1b",
        f"Generalization: {sweep['instances']} random clustered 4-way joins, "
        f"{sweep_overlay().num_nodes}-node transit-stub",
        ["baseline", "cost ratio vs integrated (mean)", "p90", "integrated strictly better"],
        [
            [
                "two-step",
                sweep["two_step_ratio_mean"],
                sweep["two_step_ratio_p90"],
                f"{sweep['wins']}/{sweep['instances']} (ties {sweep['ties']})",
            ],
            ["random", sweep["random_ratio_mean"], "-", "-"],
        ],
    )
    assert res["integrated"][1] < res["two-step"][1]
    assert sweep["two_step_ratio_mean"] >= 1.0


def test_two_step_optimize_speed(benchmark):
    sc = figure1_scenario()
    optimizer = TwoStepOptimizer(sc.cost_space)
    benchmark(optimizer.optimize, sc.query, sc.stats)


def test_sweep_single_instance_speed(benchmark):
    overlay = sweep_overlay()
    query, stats = random_query(
        overlay.num_nodes, WorkloadParams(num_producers=4), seed=0
    )
    optimizer = overlay.integrated_optimizer()
    benchmark(optimizer.optimize, query, stats)
