"""E20 — the unified load model: vectorized cost accounting + placement.

Two claims, one experiment id:

1. **Throughput** — pricing every processed tuple (base kind costs,
   per-round aggregate batch terms, per-arrival join probe counts) and
   gating admission in cost units adds per-tick work; the batched cost
   kernels must still beat the per-tuple scalar twin by ≥10× on the
   E18 traffic overlay (1000 nodes / 100 circuits) with the default
   join-heavy :class:`LoadModel` armed and cost-based backpressure
   active.  The twins ride identical RNG draws; the traffic records —
   including the cost columns, which are exact because the model's
   coefficients are dyadic — are asserted equal.

2. **Placement quality** — in the join-heavy CPU-hotspot scenario, the
   closed loop that writes measured per-node CPU cost into the cost
   space's load dimension lowers measured p95 CPU overload (total cost
   demand above the limit) versus the count-gated baseline, which
   never notices that join tuples cost more than relay tuples.

Set ``BENCH_QUICK=1`` for the small CI smoke sizes.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np

from _harness import report, write_bench_json
from bench_dataplane import DP_CIRCUITS, DP_NODES, _traffic_overlay
from repro.core.load_model import LoadModel
from repro.runtime import DataPlane, RuntimeConfig
from repro.workloads.scenarios import cpu_overload_comparison

QUICK = os.environ.get("BENCH_QUICK", "") == "1"
WARMUP_TICKS = 10 if QUICK else 25
TIMED_TICKS = 3
#: Quick mode shrinks the Python-loop / kernel gap; assert less there.
LM_SPEEDUP_FLOOR = 2.0 if QUICK else 10.0
#: Cost units per node per tick — low enough that admission actually
#: prices tuples out on the busiest hosts.
COST_CAPACITY = 25.0 if QUICK else 60.0
OVERLOAD_TICKS = 60 if QUICK else 80
OVERLOAD_WINDOW = 20 if QUICK else 30


def _assert_records_equal(rv, rs) -> None:
    """Counters and cost columns exact; usage to float-reduction noise.

    The cost columns (cpu_cost / cpu_dropped) are *exactly* equal —
    dyadic coefficients and quantized admission prices make the sums
    order-independent — while measured usage, a Σ of irrational
    latencies, is pinned to 1e-9 relative like everywhere else.
    """
    fields = (
        "tick", "emitted", "delivered", "dropped", "processed",
        "in_flight", "shed", "redelivered", "buffered",
        "cpu_cost", "cpu_dropped",
        "latency_p50", "latency_p95", "latency_p99",
    )
    assert all(getattr(rv, f) == getattr(rs, f) for f in fields), (rv, rs)
    assert abs(rv.usage - rs.usage) <= 1e-9 * max(abs(rs.usage), 1.0), (rv, rs)


@lru_cache(maxsize=1)
def loadmodel_tick_timings() -> tuple[float, float, int, float]:
    """(scalar s, vectorized s, tuples/tick, cpu/tick) on twin planes.

    Both twins run the default join-heavy cost model with cost-unit
    backpressure through their own step path on identical RNG streams;
    every per-tick record (cost columns included) is asserted equal, so
    the timed work is identical by construction.
    """
    config = RuntimeConfig(
        seed=3, load_model=LoadModel(), node_capacity=COST_CAPACITY
    )
    fast = DataPlane(_traffic_overlay(), config)
    slow = DataPlane(_traffic_overlay(), config)
    for _ in range(WARMUP_TICKS):
        _assert_records_equal(fast.step(), slow.step_scalar())
    assert fast.cpu_dropped_total > 0, "cost capacity never priced anything out"

    t0 = time.perf_counter()
    fast_records = [fast.step() for _ in range(TIMED_TICKS)]
    t_vector = (time.perf_counter() - t0) / TIMED_TICKS
    t0 = time.perf_counter()
    slow_records = [slow.step_scalar() for _ in range(TIMED_TICKS)]
    t_scalar = (time.perf_counter() - t0) / TIMED_TICKS

    for rv, rs in zip(fast_records, slow_records):
        _assert_records_equal(rv, rs)
    assert fast.accounting() == slow.accounting()
    assert fast.accounting()["balanced"]
    per_tick = int(np.mean([r.processed + r.emitted for r in fast_records]))
    cpu_tick = float(np.mean([r.cpu_cost for r in fast_records]))
    return t_scalar, t_vector, per_tick, cpu_tick


def test_report_loadmodel_tick():
    t_scalar, t_vector, per_tick, cpu_tick = loadmodel_tick_timings()
    rows = [
        [
            f"cost-accounting tick ({DP_CIRCUITS} circuits, ~{per_tick} tuples, "
            f"~{cpu_tick:.0f} cost units)",
            DP_NODES,
            t_scalar * 1e3,
            t_vector * 1e3,
            t_scalar / t_vector,
        ]
    ]
    report(
        "E20",
        "Unified load model: per-tuple cost reference vs batched cost kernels"
        + (" [quick]" if QUICK else ""),
        ["kernel", "n", "scalar ms", "vectorized ms", "speedup"],
        rows,
    )
    overload = cpu_overload_comparison(
        ticks=OVERLOAD_TICKS, eval_window=OVERLOAD_WINDOW, seed=0
    )
    write_bench_json(
        "E20",
        [
            {
                "op": "loadmodel_tick",
                "n": DP_NODES,
                "circuits": DP_CIRCUITS,
                "tuples_per_tick": per_tick,
                "cpu_per_tick": cpu_tick,
                "before_s": t_scalar,
                "after_s": t_vector,
                "speedup": t_scalar / t_vector,
            },
            {
                "op": "cpu_overload_p95",
                "count_gated": overload["count"],
                "cost_gated": overload["cost"],
                "improvement": overload["improvement"],
            },
        ],
        quick=QUICK,
    )
    assert t_scalar / t_vector >= LM_SPEEDUP_FLOOR


def test_cost_loop_lowers_p95_cpu_overload():
    """The placement-quality acceptance: the loop re-places off hot CPUs.

    In the join-heavy scenario the count-gated baseline's measured p95
    CPU overload (cost demand above the shed-limit reference) stays
    high; feeding measured cost into the load dimension must cut it by
    at least half (in practice it goes to ~zero once the joins spread).
    """
    overload = cpu_overload_comparison(
        ticks=OVERLOAD_TICKS, eval_window=OVERLOAD_WINDOW, seed=0
    )
    assert overload["count"] > 0, overload
    assert overload["cost"] < overload["count"], overload
    assert overload["improvement"] >= 0.5, overload
