"""E2 / Figure 2 — 600 nodes in a 3-D cost space.

Reproduces the construction behind the paper's Figure 2: a 600-node
transit-stub topology embedded into a cost space with two latency
dimensions (x, y) and one squared-CPU-load dimension (z).  Reports the
embedding quality and the load-dimension geometry (the overloaded
"node a" must tower over the population).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from _harness import report
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.weighting import squared
from repro.network.vivaldi import embed_latency_matrix
from repro.workloads.scenarios import figure2_scenario


@lru_cache(maxsize=1)
def figure2_data():
    topo, latencies, loads = figure2_scenario(seed=0)
    embedding = embed_latency_matrix(
        latencies, dimensions=2, rounds=30, neighbors_per_round=4, seed=0
    )
    spec = CostSpaceSpec.latency_load(vector_dims=2, load_weighting=squared(100.0))
    space = CostSpace.from_embedding(
        spec, embedding.coordinates, {"cpu_load": loads}
    )
    return topo, latencies, loads, embedding, space


def test_report_figure2(benchmark):
    topo, latencies, loads, embedding, space = figure2_data()

    # Benchmark the coordinate construction step (embedding cached).
    benchmark(
        CostSpace.from_embedding,
        CostSpaceSpec.latency_load(vector_dims=2, load_weighting=squared(100.0)),
        embedding.coordinates,
        {"cpu_load": loads},
    )

    scalars = np.array([space.coordinate(i).scalar[0] for i in range(600)])
    vectors = space.vector_matrix()
    span = float(np.linalg.norm(vectors.max(axis=0) - vectors.min(axis=0)))
    report(
        "E2",
        "Figure 2: 600-node transit-stub in a (latency, latency, load^2) cost space",
        ["quantity", "value"],
        [
            ["nodes", 600],
            ["embedding dims (vector)", 2],
            ["median relative embedding error", embedding.median_relative_error],
            ["mean relative embedding error", embedding.mean_relative_error],
            ["latency-plane span (ms)", span],
            ["median load coordinate", float(np.median(scalars))],
            ["p99 load coordinate", float(np.percentile(scalars, 99))],
            ["overloaded node a load coordinate", float(scalars[0])],
            ["node a percentile", float((scalars < scalars[0]).mean() * 100)],
        ],
    )
    assert embedding.median_relative_error < 0.35
    assert scalars[0] > np.percentile(scalars, 99)


def test_embedding_speed_100_nodes(benchmark):
    _, latencies, _, _, _ = figure2_data()
    sub = latencies.submatrix(list(range(100)))
    benchmark(
        embed_latency_matrix, sub, dimensions=2, rounds=10, neighbors_per_round=4
    )


def test_cost_space_distance_speed(benchmark):
    *_, space = figure2_data()

    def distances():
        total = 0.0
        for j in range(1, 200):
            total += space.distance(0, j)
        return total

    benchmark(distances)
