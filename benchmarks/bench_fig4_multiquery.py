"""E4 / Figure 4 — multi-query optimization pruned by cost-space radius.

Part (a) reproduces the figure: three deployed circuits, radius r that
covers only the nearby one (C3); the optimizer examines one candidate
and taps C3's join service.

Part (b) sweeps the radius on a larger deployed population and reports
the pruning trade-off: candidates examined (optimizer work) vs. reuse
rate and cost savings.  The paper's claim is that a modest radius keeps
nearly all of the savings while examining a small fraction of the
system's services.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

import numpy as np

from _harness import report
from repro.core.multi_query import MultiQueryOptimizer
from repro.core.optimizer import IntegratedOptimizer
from repro.network.topology import transit_stub_topology, TransitStubParams
from repro.sbon.overlay import Overlay
from repro.workloads.queries import WorkloadParams, random_query
from repro.workloads.scenarios import figure4_scenario

POPULATION = 12  # deployed circuits in the sweep
NEW_QUERIES = 10


@lru_cache(maxsize=1)
def sweep_overlay() -> Overlay:
    topo = transit_stub_topology(
        TransitStubParams(
            num_transit_domains=3,
            transit_nodes_per_domain=3,
            stub_domains_per_transit_node=2,
            nodes_per_stub_domain=5,
        ),  # 9 + 9*2*5 = 99 nodes
        seed=2,
    )
    return Overlay.build(topo, vector_dims=2, embedding_rounds=40, seed=2)


@lru_cache(maxsize=1)
def deployed_population():
    """Deploy POPULATION circuits; half share producer sets pairwise."""
    overlay = sweep_overlay()
    integ = overlay.integrated_optimizer()
    deployments = []
    params = WorkloadParams(num_producers=3, clustered=True, cluster_span=25)
    for i in range(POPULATION):
        query, stats = random_query(overlay.num_nodes, params, name=f"dep{i}", seed=i)
        deployments.append((query, stats, integ.optimize(query, stats)))
    # New queries: same producers as a deployed one, different consumer.
    new_queries = []
    for j in range(NEW_QUERIES):
        base_query, base_stats, _ = deployments[j % POPULATION]
        consumer = dataclasses.replace(
            base_query.consumer,
            name=f"new{j}.C",
            node=(base_query.consumer.node + 7 + j) % overlay.num_nodes,
        )
        new_queries.append(
            (dataclasses.replace(base_query, name=f"new{j}", consumer=consumer),
             base_stats)
        )
    return deployments, new_queries


@lru_cache(maxsize=1)
def radius_sweep():
    overlay = sweep_overlay()
    deployments, new_queries = deployed_population()
    span = float(
        np.linalg.norm(
            overlay.cost_space.vector_matrix().max(axis=0)
            - overlay.cost_space.vector_matrix().min(axis=0)
        )
    )
    rows = []
    for fraction in (0.0, 0.05, 0.1, 0.2, 0.4, 1.0, float("inf")):
        radius = span * fraction if np.isfinite(fraction) else float("inf")
        mq = MultiQueryOptimizer(overlay.cost_space, radius=radius)
        for _, _, result in deployments:
            mq.deploy(result)
        examined, reused, savings = [], 0, []
        for query, stats in new_queries:
            out = mq.optimize(query, stats)
            examined.append(out.candidates_examined)
            if out.reuse_happened:
                reused += 1
            savings.append(out.savings / max(out.standalone.cost.total, 1e-9))
        rows.append(
            [
                "inf" if not np.isfinite(fraction) else f"{fraction:.2f}",
                float(np.mean(examined)),
                f"{reused}/{len(new_queries)}",
                float(np.mean(savings) * 100),
            ]
        )
    return rows


def test_report_figure4(benchmark):
    sc = figure4_scenario()
    mq = MultiQueryOptimizer(sc.cost_space, radius=sc.radius)
    integ = IntegratedOptimizer(sc.cost_space)
    for query, stats in sc.existing:
        mq.deploy(integ.optimize(query, stats))

    out = benchmark(mq.optimize, sc.new_query, sc.new_stats)
    report(
        "E4a",
        "Figure 4 scenario: 3 deployed circuits, radius covers only C3",
        ["quantity", "value"],
        [
            ["deployed services", out.total_deployed],
            ["candidates examined (within r)", out.candidates_examined],
            ["service reused", out.reused[0].circuit_name if out.reused else "-"],
            ["standalone cost", out.standalone.cost.total],
            ["with-reuse cost", out.cost.total],
            ["savings (%)", 100 * out.savings / out.standalone.cost.total],
        ],
    )
    assert out.candidates_examined == 1
    assert out.reuse_happened

    rows = radius_sweep()
    report(
        "E4b",
        f"Radius sweep: {POPULATION} deployed circuits, {NEW_QUERIES} new queries "
        "(radius as fraction of cost-space span)",
        ["radius/span", "mean candidates examined", "reuse rate", "mean savings (%)"],
        rows,
    )
    # Pruning shape: examined grows with radius; savings saturate.
    examined = [r[1] for r in rows]
    assert examined == sorted(examined)
    assert rows[0][1] == 0.0  # zero radius examines nothing


def test_multi_query_optimize_speed(benchmark):
    overlay = sweep_overlay()
    deployments, new_queries = deployed_population()
    mq = MultiQueryOptimizer(overlay.cost_space, radius=float("inf"))
    for _, _, result in deployments:
        mq.deploy(result)
    query, stats = new_queries[0]
    benchmark(mq.optimize, query, stats)
