"""E9 — network-coordinate embedding quality (cost-space substrate).

§3.1 (citing Ng & Zhang): latency metric spaces "can be constructed
with only a slight error while using a small number of dimensions",
even though Internet latencies violate the triangle inequality.

Sweeps:
  (a) Vivaldi median relative error vs dimensionality (1-5) on a
      transit-stub matrix — expect a sharp drop from 1→2 dims then a
      plateau (the paper uses 2);
  (b) Vivaldi vs the centralized landmark embedding at 2-D;
  (c) robustness: error with triangle-inequality violations injected.
"""

from __future__ import annotations

from functools import lru_cache

from _harness import report
from repro.network.landmark import embed_with_landmarks
from repro.network.latency import LatencyMatrix
from repro.network.topology import TransitStubParams, transit_stub_topology
from repro.network.vivaldi import embed_latency_matrix

TOPOLOGY = TransitStubParams(
    num_transit_domains=3,
    transit_nodes_per_domain=3,
    stub_domains_per_transit_node=3,
    nodes_per_stub_domain=5,
)  # 144 nodes


@lru_cache(maxsize=1)
def base_matrix() -> LatencyMatrix:
    return LatencyMatrix.from_topology(transit_stub_topology(TOPOLOGY, seed=6))


@lru_cache(maxsize=1)
def dimension_sweep():
    rows = []
    for dims in (1, 2, 3, 4, 5):
        result = embed_latency_matrix(
            base_matrix(), dimensions=dims, rounds=40, neighbors_per_round=6, seed=6
        )
        rows.append([dims, result.median_relative_error, result.mean_relative_error])
    return rows


@lru_cache(maxsize=1)
def method_comparison():
    lm = base_matrix()
    vivaldi = embed_latency_matrix(
        lm, dimensions=2, rounds=40, neighbors_per_round=6, seed=6
    )
    landmark = embed_with_landmarks(
        lm, dimensions=2, num_landmarks=12, iterations=80, seed=6
    )
    return [
        ["vivaldi (decentralized)", vivaldi.median_relative_error,
         vivaldi.samples_used],
        ["landmark (centralized)", landmark.median_relative_error,
         landmark.samples_used],
    ]


@lru_cache(maxsize=1)
def tiv_sweep():
    rows = []
    for fraction in (0.0, 0.05, 0.15, 0.3):
        lm = base_matrix().with_triangle_violations(
            fraction=fraction, inflation=2.5, seed=1
        )
        violated = lm.triangle_violation_fraction(sample_size=4000, seed=1)
        result = embed_latency_matrix(
            lm, dimensions=2, rounds=40, neighbors_per_round=6, seed=6
        )
        rows.append([f"{fraction:.2f}", violated, result.median_relative_error])
    return rows


def test_report_embedding(benchmark):
    lm = base_matrix()
    benchmark(
        embed_latency_matrix, lm, dimensions=2, rounds=5, neighbors_per_round=4
    )

    report(
        "E9a",
        "Vivaldi error vs dimensionality (144-node transit-stub)",
        ["dims", "median rel. error", "mean rel. error"],
        dimension_sweep(),
    )
    report(
        "E9b",
        "Vivaldi vs landmark embedding (2-D)",
        ["method", "median rel. error", "latency samples used"],
        method_comparison(),
    )
    report(
        "E9c",
        "Vivaldi robustness to triangle-inequality violations (2-D)",
        ["pairs inflated", "TIV fraction (sampled triples)", "median rel. error"],
        tiv_sweep(),
    )
    dims_rows = dimension_sweep()
    errors = {row[0]: row[1] for row in dims_rows}
    # Sharp 1 -> 2 improvement, then plateau; 2-D is already "slight".
    assert errors[2] < errors[1] * 0.8
    assert errors[2] < 0.3
    assert abs(errors[5] - errors[2]) < 0.15
    # Realistic TIV levels (~5% of pairs) stay "slight"; even severe
    # inflation (30% of pairs x2.5) degrades without diverging.
    tiv_rows = tiv_sweep()
    assert tiv_rows[1][2] < 0.25
    assert tiv_rows[-1][2] < 1.0
