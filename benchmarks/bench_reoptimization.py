"""E7 — re-optimization under network dynamics.

§2/§3.3: long-running circuits go stale as load and latency drift; a
node hosting part of a circuit can re-run placement and migrate.  This
experiment installs a workload on an overlay and drives identical load
dynamics (including a mid-run hotspot on the circuits' hosts) through
three regimes:

  static         no re-optimization (the classic deploy-and-forget)
  local reopt    decentralized per-service migration every 5 ticks
  local+oracle   same, but pricing with true latencies/loads

Reported: mean/final true network usage and a load-violation count
(ticks where a circuit host exceeded 90% load).  Re-optimization should
hold usage near the initial optimum and shed the hotspot.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from _harness import report
from repro.network.dynamics import HotspotEvent, LoadProcess
from repro.network.topology import TransitStubParams, transit_stub_topology
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.queries import WorkloadParams, random_workload

TICKS = 60
TOPOLOGY = TransitStubParams(
    num_transit_domains=2,
    transit_nodes_per_domain=3,
    stub_domains_per_transit_node=2,
    nodes_per_stub_domain=5,
)  # 6 + 6*2*5 = 66 nodes


def _build_system(config: SimulationConfig, seed: int = 4):
    topo = transit_stub_topology(TOPOLOGY, seed=seed)
    overlay = Overlay.build(topo, vector_dims=2, embedding_rounds=40, seed=seed)
    workload = random_workload(
        overlay.num_nodes, 4, WorkloadParams(num_producers=3), seed=seed
    )
    integ = overlay.integrated_optimizer()
    for query, stats in workload:
        overlay.install(integ.optimize(query, stats))
    hosts = tuple(
        sorted(
            {
                c.host_of(sid)
                for c in overlay.circuits.values()
                for sid in c.unpinned_ids()
            }
        )
    )
    load = LoadProcess(overlay.num_nodes, mean_load=0.2, sigma=0.03, seed=seed)
    load.add_hotspot(
        HotspotEvent(start_tick=15, duration=30, nodes=hosts, extra_load=0.75)
    )
    return Simulation(overlay, load_process=load, config=config), hosts


def _run(config: SimulationConfig):
    sim, hosts = _build_system(config)
    violations = 0
    for _ in range(TICKS):
        sim.step()
        loads = sim.overlay.loads()
        for circuit in sim.overlay.circuits.values():
            for sid in circuit.unpinned_ids():
                if loads[circuit.host_of(sid)] > 0.9:
                    violations += 1
    s = sim.series
    return {
        "mean": s.mean_usage(),
        "final": s.final_usage(),
        "peak": s.peak_usage(),
        "migrations": s.total_migrations(),
        "violations": violations,
    }


@lru_cache(maxsize=1)
def regime_results():
    return {
        "static": _run(SimulationConfig(reopt_interval=0)),
        "local reopt": _run(
            SimulationConfig(reopt_interval=5, migration_threshold=0.01)
        ),
        "local+oracle": _run(
            SimulationConfig(
                reopt_interval=5,
                migration_threshold=0.01,
                use_ground_truth_for_reopt=True,
            )
        ),
    }


def test_report_reoptimization(benchmark):
    results = regime_results()

    sim, _ = _build_system(SimulationConfig(reopt_interval=5))
    benchmark(sim.step)

    rows = [
        [
            name,
            r["mean"],
            r["final"],
            r["peak"],
            r["migrations"],
            r["violations"],
        ]
        for name, r in results.items()
    ]
    report(
        "E7",
        f"Re-optimization under load drift + hotspot ({TICKS} ticks, "
        "4 circuits, 66-node transit-stub)",
        ["regime", "mean usage", "final usage", "peak usage",
         "migrations", "host>90% ticks"],
        rows,
    )
    static = results["static"]
    local = results["local reopt"]
    assert local["migrations"] > 0
    assert static["migrations"] == 0
    # Re-optimization sheds the hotspot that the static system sits on.
    assert local["violations"] < static["violations"]
