"""E18 — the data-plane runtime: vectorized transport vs per-tuple loops.

The data plane executes *every* installed circuit concurrently inside
the simulation tick: sources emit Poisson tuple batches, joins match
them against windowed state, and the transport delivers by one
vectorized arrival-tick comparison.  This benchmark times one full
traffic tick on a 1000-node / 100-circuit overlay through the batched
kernels (``DataPlane.step``) versus the retained per-tuple reference
(``DataPlane.step_scalar``: heapq transport, per-key join tables,
identical RNG draws) and asserts the ≥10× speedup floor.

It also asserts the headline safety property: under churn, a load
hotspot, and live re-optimization migrations, every emitted tuple is
delivered, still in flight, or *explicitly* counted as dropped — the
conservation balance holds at every tick, no tuple is silently lost.

Set ``BENCH_QUICK=1`` for the small CI smoke sizes.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np

from _harness import report, write_bench_json
from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.network.latency import LatencyMatrix
from repro.query.operators import ServiceSpec
from repro.runtime.dataplane import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay
from repro.workloads.scenarios import chaos_scenario

QUICK = os.environ.get("BENCH_QUICK", "") == "1"
#: (nodes, circuits, joins per circuit) of the traffic tick.
DP_NODES, DP_CIRCUITS, DP_JOINS = (150, 20, 2) if QUICK else (1000, 100, 3)
WARMUP_TICKS = 10 if QUICK else 25
TIMED_TICKS = 3
#: Quick mode shrinks the Python-loop / kernel gap; assert less there.
DP_SPEEDUP_FLOOR = 2.0 if QUICK else 10.0
CHAOS_TICKS = 40 if QUICK else 60


def _traffic_overlay(seed: int = 0) -> Overlay:
    """A planted overlay carrying ``DP_CIRCUITS`` random join chains.

    Substrate latencies are Euclidean distances on a random plane (a
    valid symmetric matrix, no embedding warm-up needed); circuits are
    join chains with uniform source rates and decaying internal rates,
    so every tick moves a few thousand tuples.  Identical seeds build
    identical twins for the step / step_scalar comparison.
    """
    n, num_circuits, joins = DP_NODES, DP_CIRCUITS, DP_JOINS
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 200.0, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(n)})
    overlay = Overlay(latencies, space)
    for c in range(num_circuits):
        circuit = Circuit(name=f"c{c}")
        producers = rng.choice(n, size=joins + 1, replace=False)
        for a, node in enumerate(producers):
            circuit.add_service(
                Service(f"c{c}/p{a}", ServiceSpec.relay(), int(node), frozenset((f"P{a}",)))
            )
        prev = f"c{c}/p0"
        prev_rate = float(rng.uniform(4.0, 10.0))
        for j in range(joins):
            sid = f"c{c}/j{j}"
            circuit.add_service(
                Service(sid, ServiceSpec.join(), None, frozenset((f"P{j}", f"X{j}")))
            )
            other_rate = float(rng.uniform(4.0, 10.0))
            circuit.add_link(prev, sid, prev_rate)
            circuit.add_link(f"c{c}/p{j + 1}", sid, other_rate)
            circuit.assign(sid, int(rng.integers(n)))
            prev = sid
            prev_rate = float(rng.uniform(0.3, 0.8)) * min(prev_rate, other_rate)
        sink = f"c{c}/sink"
        circuit.add_service(
            Service(sink, ServiceSpec.relay(), int(rng.integers(n)), frozenset(("ALL",)))
        )
        circuit.add_link(prev, sink, prev_rate)
        overlay.install_circuit(circuit)
    return overlay


@lru_cache(maxsize=1)
def dataplane_tick_timings() -> tuple[float, float, int]:
    """(scalar seconds, vectorized seconds, tuples/tick) on twin planes.

    Both twins warm up through their own path (state fills, caches
    settle) with identical RNG streams, then ``TIMED_TICKS`` ticks are
    timed on each.  The per-tick integer traffic counters are asserted
    equal, so the measured work is identical by construction.
    """
    fast = DataPlane(_traffic_overlay(), RuntimeConfig(seed=3))
    slow = DataPlane(_traffic_overlay(), RuntimeConfig(seed=3))
    for _ in range(WARMUP_TICKS):
        fast.step()
        slow.step_scalar()
    t0 = time.perf_counter()
    fast_records = [fast.step() for _ in range(TIMED_TICKS)]
    t_vector = (time.perf_counter() - t0) / TIMED_TICKS
    t0 = time.perf_counter()
    slow_records = [slow.step_scalar() for _ in range(TIMED_TICKS)]
    t_scalar = (time.perf_counter() - t0) / TIMED_TICKS
    for rv, rs in zip(fast_records, slow_records):
        assert (rv.emitted, rv.delivered, rv.dropped, rv.processed, rv.in_flight) == (
            rs.emitted, rs.delivered, rs.dropped, rs.processed, rs.in_flight
        )
    assert fast.accounting()["balanced"] and slow.accounting()["balanced"]
    per_tick = int(np.mean([r.processed + r.emitted for r in fast_records]))
    return t_scalar, t_vector, per_tick


def test_report_dataplane_tick():
    t_scalar, t_vector, per_tick = dataplane_tick_timings()
    rows = [
        [
            f"traffic tick ({DP_CIRCUITS} circuits, ~{per_tick} tuples)",
            DP_NODES,
            t_scalar * 1e3,
            t_vector * 1e3,
            t_scalar / t_vector,
        ]
    ]
    report(
        "E18",
        "Data-plane runtime: per-tuple heapq reference vs batched transport"
        + (" [quick]" if QUICK else ""),
        ["kernel", "n", "scalar ms", "vectorized ms", "speedup"],
        rows,
    )
    write_bench_json(
        "E18",
        [
            {
                "op": "dataplane_tick",
                "n": DP_NODES,
                "circuits": DP_CIRCUITS,
                "tuples_per_tick": per_tick,
                "before_s": t_scalar,
                "after_s": t_vector,
                "speedup": t_scalar / t_vector,
            }
        ],
        quick=QUICK,
    )
    assert t_scalar / t_vector >= DP_SPEEDUP_FLOOR


def test_tuple_conservation_under_churn_and_migration():
    """No tuple is silently lost while the chaos scenario rages.

    Churn fails nodes, the hotspot forces live migrations, and
    backpressure drops tuples — yet at every tick the accounting
    balances: sent == delivered-from-transport + in-flight, and every
    delivered tuple was processed or counted dropped.
    """
    scenario = chaos_scenario(num_nodes=30, num_circuits=3, node_capacity=50.0, seed=2)
    sim = scenario.simulation
    for _ in range(CHAOS_TICKS):
        sim.step()
        acct = scenario.data_plane.accounting()
        assert acct["balanced"], acct
    series = sim.series
    assert series.total_failures() > 0, "churn never fired; scenario too tame"
    assert series.total_migrations() > 0, "re-optimizer never migrated"
    assert series.total_delivered() > 0, "no tuples reached consumers"
    acct = scenario.data_plane.accounting()
    assert acct["sent"] == acct["transport_delivered"] + acct["in_flight"]
    assert acct["transport_delivered"] == acct["processed"] + acct["dropped"]
