"""E23 — elastic scaling: replicated segments at batch speed.

Two claims, one experiment id:

1. **Throughput** — key-partitioned replication multiplies the arena's
   operator count (every scaled join becomes k replicas plus a merge
   relay) and puts the SplitMix64 key-bucket router on every split
   link, yet the batched kernels must still beat the per-tuple scalar
   twin by ≥10× on a traffic tick where every circuit's first join
   runs replicated.  The twins ride identical RNG draws (the router
   hashes keys, drawing none), scale up *and* back down mid-warmup
   through live ``replace_circuit`` events, and the conservation
   balance is asserted on every tick — including the scale-event ticks
   that re-home in-flight tuples and per-key state.

2. **Elasticity quality** — under the flash-crowd (``lambda_spike``)
   hotspot the autoscaled loop must eliminate at least half of the
   move-only controller's p95 measured CPU overload (the PR 9
   acceptance headline; see ``tests/integration/test_scaling_loop``).

Set ``BENCH_QUICK=1`` for the small CI smoke sizes.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np

from _harness import report, write_bench_json
from bench_dataplane import DP_CIRCUITS, DP_NODES, _traffic_overlay
from repro.core.rewriting import replicate_operator
from repro.runtime.dataplane import DataPlane, RuntimeConfig
from repro.workloads.scenarios import scaling_overload_comparison

QUICK = os.environ.get("BENCH_QUICK", "") == "1"
WARMUP_TICKS = 12 if QUICK else 24
TIMED_TICKS = 3
#: Quick mode shrinks the Python-loop / kernel gap; assert less there.
SC_SPEEDUP_FLOOR = 2.0 if QUICK else 10.0
#: Replicas per scaled join during the timed ticks.
SCALE_K = 3
OVERLOAD_TICKS = 60 if QUICK else 80
OVERLOAD_WINDOW = 25 if QUICK else 35


def _scale_all(overlay, k: int) -> int:
    """Rescale every circuit's first join to ``k`` replicas in place."""
    scaled = 0
    for name in list(overlay.circuits):
        result = replicate_operator(overlay.circuits[name], f"{name}/j0", k)
        if result.applied:
            overlay.replace_circuit(result.circuit)
            scaled += 1
    return scaled


def _assert_tick_equal(rv, rs) -> None:
    assert (rv.emitted, rv.delivered, rv.dropped, rv.processed, rv.in_flight) == (
        rs.emitted, rs.delivered, rs.dropped, rs.processed, rs.in_flight
    ), (rv, rs)


@lru_cache(maxsize=1)
def scaling_tick_timings() -> tuple[float, float, int, int]:
    """(scalar s, vectorized s, tuples/tick, scaled joins) on twin planes.

    Both twins scale every circuit's first join up to ``SCALE_K``
    replicas a third of the way through warmup, fold half of them back
    down two thirds through (exercising merge-down state re-homing),
    and re-split them before the timed ticks — so the timed tick runs
    the router on every scaled circuit while warmup covered both
    scale-event directions.  Conservation is asserted on every tick.
    """
    fast_overlay, slow_overlay = _traffic_overlay(), _traffic_overlay()
    fast = DataPlane(fast_overlay, RuntimeConfig(seed=3))
    slow = DataPlane(slow_overlay, RuntimeConfig(seed=3))
    scaled = 0
    for t in range(WARMUP_TICKS):
        if t == WARMUP_TICKS // 3:
            scaled = _scale_all(fast_overlay, SCALE_K)
            assert _scale_all(slow_overlay, SCALE_K) == scaled
            assert scaled == DP_CIRCUITS
        if t == 2 * WARMUP_TICKS // 3:
            # Fold back and immediately re-split on the next branch: the
            # merge-down path re-homes every replica's keyed state.
            assert _scale_all(fast_overlay, 1) == scaled
            assert _scale_all(slow_overlay, 1) == scaled
        if t == 2 * WARMUP_TICKS // 3 + 1:
            _scale_all(fast_overlay, SCALE_K)
            _scale_all(slow_overlay, SCALE_K)
        _assert_tick_equal(fast.step(), slow.step_scalar())
        assert fast.accounting()["balanced"], t
        assert slow.accounting()["balanced"], t

    t0 = time.perf_counter()
    fast_records = [fast.step() for _ in range(TIMED_TICKS)]
    t_vector = (time.perf_counter() - t0) / TIMED_TICKS
    t0 = time.perf_counter()
    slow_records = [slow.step_scalar() for _ in range(TIMED_TICKS)]
    t_scalar = (time.perf_counter() - t0) / TIMED_TICKS

    for rv, rs in zip(fast_records, slow_records):
        _assert_tick_equal(rv, rs)
    assert fast.accounting() == slow.accounting()
    assert fast.accounting()["balanced"]
    per_tick = int(np.mean([r.processed + r.emitted for r in fast_records]))
    return t_scalar, t_vector, per_tick, scaled


def test_report_scaling_tick():
    t_scalar, t_vector, per_tick, scaled = scaling_tick_timings()
    rows = [
        [
            f"replicated tick ({DP_CIRCUITS} circuits, {scaled} joins at "
            f"k={SCALE_K}, ~{per_tick} tuples)",
            DP_NODES,
            t_scalar * 1e3,
            t_vector * 1e3,
            t_scalar / t_vector,
        ]
    ]
    report(
        "E23",
        "Elastic scaling: per-tuple routing reference vs batched key-bucket router"
        + (" [quick]" if QUICK else ""),
        ["kernel", "n", "scalar ms", "vectorized ms", "speedup"],
        rows,
    )
    overload = scaling_overload_comparison(
        ticks=OVERLOAD_TICKS, eval_window=OVERLOAD_WINDOW, seed=0
    )
    write_bench_json(
        "E23",
        [
            {
                "op": "scaling_tick",
                "n": DP_NODES,
                "circuits": DP_CIRCUITS,
                "scaled_joins": scaled,
                "replicas": SCALE_K,
                "tuples_per_tick": per_tick,
                "before_s": t_scalar,
                "after_s": t_vector,
                "speedup": t_scalar / t_vector,
            },
            {
                "op": "scaling_overload_p95",
                "move_only": overload["move_only"],
                "autoscaled": overload["autoscaled"],
                "improvement": overload["improvement"],
                "scale_ups": overload["scale_ups"],
                "scale_downs": overload["scale_downs"],
            },
        ],
        quick=QUICK,
    )
    assert t_scalar / t_vector >= SC_SPEEDUP_FLOOR


def test_autoscaler_halves_p95_overload():
    """The elasticity acceptance: scaling relieves what moving cannot."""
    overload = scaling_overload_comparison(
        ticks=OVERLOAD_TICKS, eval_window=OVERLOAD_WINDOW, seed=0
    )
    assert overload["move_only"] > 0, overload
    assert overload["improvement"] >= 0.5, overload
