"""E15 — bandwidth as a cost (§3.1 extension).

§3.1 names *available bandwidth* among the costs a cost space should
express.  This experiment gives the integrated optimizer a
congestion-aware evaluator (ground truth latency pricing plus a
surcharge for stream rates exceeding 80% of a path's bottleneck
capacity) on a transit-stub network with class-based link capacities
(fat transit core, thin stub edges), and compares against the
bandwidth-oblivious optimizer on heavy-rate workloads:

  * congestion events (links over cap) per circuit,
  * excess traffic (rate beyond cap, weighted by latency),
  * plain network usage paid for the congestion avoidance.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from _harness import report
from repro.core.bandwidth_costs import BandwidthAwareEvaluator
from repro.core.costs import GroundTruthEvaluator
from repro.network.bandwidth import BandwidthMatrix, assign_link_capacities
from repro.network.topology import TransitStubParams, transit_stub_topology
from repro.sbon.overlay import Overlay
from repro.workloads.queries import WorkloadParams, random_query

INSTANCES = 20
TOPOLOGY = TransitStubParams(
    num_transit_domains=3,
    transit_nodes_per_domain=3,
    stub_domains_per_transit_node=2,
    nodes_per_stub_domain=5,
)


@lru_cache(maxsize=1)
def environment():
    topo = transit_stub_topology(TOPOLOGY, seed=15)
    overlay = Overlay.build(topo, vector_dims=2, embedding_rounds=40, seed=15)
    capacities = assign_link_capacities(
        topo, transit_capacity=500.0, stub_capacity=60.0, edge_capacity=15.0, seed=15
    )
    bandwidth = BandwidthMatrix.from_topology(topo, capacities=capacities)
    return overlay, bandwidth


def _congestion_stats(circuit, bandwidth, latencies, utilization_cap=0.8):
    """(congested links, latency-weighted congestion damage).

    Damage = Σ latency × (rate − cap·bottleneck) over congested links —
    overload traffic weighted by how long it sits in the network, the
    quantity the bandwidth-aware evaluator actually prices.
    """
    congested = 0
    damage = 0.0
    for link in circuit.links:
        u = circuit.host_of(link.source)
        v = circuit.host_of(link.target)
        if u == v:
            continue
        allowed = utilization_cap * bandwidth.bottleneck(u, v)
        if link.rate > allowed:
            congested += 1
            damage += latencies.latency(u, v) * (link.rate - allowed)
    return congested, damage


@lru_cache(maxsize=1)
def comparison():
    overlay, bandwidth = environment()
    plain_judge = GroundTruthEvaluator(overlay.latencies)
    # Heavy streams: rates 20-60 against stub capacities of ~60.
    params = WorkloadParams(
        num_producers=3,
        rate_bounds=(20.0, 60.0),
        selectivity_bounds=(0.2, 0.8),
        clustered=True,
        cluster_span=25,
    )
    rows = {}
    for name, evaluator in (
        ("oblivious", None),
        ("bandwidth-aware",
         BandwidthAwareEvaluator(overlay.latencies, bandwidth,
                                 congestion_weight=8.0)),
    ):
        congested_total = 0
        excess_total = 0.0
        usage_total = 0.0
        for seed in range(INSTANCES):
            query, stats = random_query(overlay.num_nodes, params, seed=seed)
            kwargs = {"refinement_candidates": 8}
            if evaluator is not None:
                kwargs["evaluator"] = evaluator
            optimizer = overlay.integrated_optimizer(**kwargs)
            result = optimizer.optimize(query, stats)
            congested, excess = _congestion_stats(
                result.circuit, bandwidth, overlay.latencies
            )
            congested_total += congested
            excess_total += excess
            usage_total += plain_judge.evaluate(result.circuit).network_usage
        rows[name] = [
            name,
            congested_total,
            excess_total / INSTANCES,
            usage_total / INSTANCES,
        ]
    return [rows["oblivious"], rows["bandwidth-aware"]]


def test_report_bandwidth(benchmark):
    overlay, bandwidth = environment()
    query, stats = random_query(
        overlay.num_nodes, WorkloadParams(num_producers=3), seed=0
    )
    aware = overlay.integrated_optimizer(
        evaluator=BandwidthAwareEvaluator(overlay.latencies, bandwidth)
    )
    benchmark(aware.optimize, query, stats)

    rows = comparison()
    report(
        "E15",
        f"Bandwidth-aware placement vs oblivious "
        f"({INSTANCES} heavy 3-way joins, class-based capacities)",
        ["optimizer", "congested links (total)", "mean congestion damage",
         "mean network usage"],
        rows,
    )
    oblivious, aware_row = rows
    # Awareness reduces both congested-link count and latency-weighted
    # damage, possibly paying some plain usage for the detours.
    assert aware_row[1] <= oblivious[1]
    assert aware_row[2] < oblivious[2]


def test_bandwidth_matrix_construction_speed(benchmark):
    overlay, _ = environment()
    topo = overlay.topology
    caps = assign_link_capacities(topo, seed=1)
    benchmark(BandwidthMatrix.from_topology, topo, caps)
