"""E24 — absolute tick speed: epoch-ring + high-water vs the PR 9 baseline.

Earlier benchmarks pinned *relative* floors (vectorized vs per-tuple
scalar); this one starts the absolute-time trajectory the ROADMAP's
"raw speed" direction calls for.  It times one full traffic tick of
the batched data plane in both join-state/admission configurations on
the same machine, same process, interleaved:

* **baseline** — ``join_state="twolevel"``, ``admission="frozen"``,
  ``jit="numpy"``: the exact PR 9 hot path (O(state) ``np.insert``
  merges, tick-start full state scans), measured fresh rather than
  read from a stale file so the comparison is apples to apples.
* **current** — the defaults: epoch-ring join state, high-water
  admission ledger, ``jit="auto"``.

Per-tick :class:`TrafficRecord` equality is asserted for every timed
tick — the speedup is measured on bit-identical work.  Timing uses the
minimum over interleaved multi-tick blocks: scheduler noise only ever
*adds* time, so the block minimum is the stable estimator on a shared
machine (medians of the same data swing by ±10%).

Full mode asserts the ≥1.3× floor at 1000 nodes / 100 circuits and
also reports the 4000 / 1000 scale, where the baseline's O(state)
re-sorts hurt more.  ``after_s`` lands in ``BENCH_E24.json`` so
``check_regression.py`` tracks the absolute trend release over
release.  Set ``BENCH_QUICK=1`` for the small CI smoke sizes (no
floor assert there: tiny state flatters the baseline).
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np

from _harness import report, write_bench_json
from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.load_model import LoadModel
from repro.network.latency import LatencyMatrix
from repro.query.operators import ServiceSpec
from repro.runtime.dataplane import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay

QUICK = os.environ.get("BENCH_QUICK", "") == "1"
#: (nodes, circuits, joins per circuit) rows of the trajectory table.
SCALES = [(150, 20, 2)] if QUICK else [(1000, 100, 3), (4000, 1000, 3)]
#: Ticks to reach steady-state join-state occupancy before timing.
WARMUP_TICKS = 30 if QUICK else 100
#: Ticks per timed block; blocks alternate baseline/current.
BLOCK_TICKS = 3 if QUICK else 5
BLOCK_ROUNDS = 6 if QUICK else 12
#: Asserted in full mode at the (1000, 100) row only.
TICK_SPEEDUP_FLOOR = 1.3


def _overlay(n: int, num_circuits: int, joins: int, seed: int = 0) -> Overlay:
    """Random-plane overlay carrying join-chain circuits (E18 shape)."""
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 200.0, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(n)})
    overlay = Overlay(latencies, space)
    for c in range(num_circuits):
        circuit = Circuit(name=f"c{c}")
        producers = rng.choice(n, size=joins + 1, replace=False)
        for a, node in enumerate(producers):
            circuit.add_service(
                Service(f"c{c}/p{a}", ServiceSpec.relay(), int(node), frozenset((f"P{a}",)))
            )
        prev = f"c{c}/p0"
        prev_rate = float(rng.uniform(4.0, 10.0))
        for j in range(joins):
            sid = f"c{c}/j{j}"
            circuit.add_service(
                Service(sid, ServiceSpec.join(), None, frozenset((f"P{j}", f"X{j}")))
            )
            other_rate = float(rng.uniform(4.0, 10.0))
            circuit.add_link(prev, sid, prev_rate)
            circuit.add_link(f"c{c}/p{j + 1}", sid, other_rate)
            circuit.assign(sid, int(rng.integers(n)))
            prev = sid
            prev_rate = float(rng.uniform(0.3, 0.8)) * min(prev_rate, other_rate)
        sink = f"c{c}/sink"
        circuit.add_service(
            Service(sink, ServiceSpec.relay(), int(rng.integers(n)), frozenset(("ALL",)))
        )
        circuit.add_link(prev, sink, prev_rate)
        overlay.install_circuit(circuit)
    return overlay


@lru_cache(maxsize=None)
def tick_speed_timings(n: int, circuits: int, joins: int):
    """(baseline s/tick, current s/tick, tuples/tick) at one scale.

    Twin planes share the overlay and RNG seed; admission prices are
    live (default :class:`LoadModel`, probe cost active) but capacity
    is effectively unbounded so the timed work is the pure tick
    machinery, not drop bookkeeping.  Every timed tick's record is
    asserted equal across the twins.
    """
    overlay = _overlay(n, circuits, joins)
    model = LoadModel()
    cap = 1e9
    baseline = DataPlane(
        overlay,
        RuntimeConfig(
            seed=3, node_capacity=cap, load_model=model,
            join_state="twolevel", admission="frozen", jit="numpy",
        ),
    )
    current = DataPlane(
        overlay, RuntimeConfig(seed=3, node_capacity=cap, load_model=model)
    )
    tuples = 0
    for _ in range(WARMUP_TICKS):
        r0 = baseline.step()
        r1 = current.step()
        assert r0 == r1
    t_base: list[float] = []
    t_cur: list[float] = []
    for _ in range(BLOCK_ROUNDS):
        t0 = time.perf_counter()
        records_base = [baseline.step() for _ in range(BLOCK_TICKS)]
        t_base.append((time.perf_counter() - t0) / BLOCK_TICKS)
        t0 = time.perf_counter()
        records_cur = [current.step() for _ in range(BLOCK_TICKS)]
        t_cur.append((time.perf_counter() - t0) / BLOCK_TICKS)
        assert records_base == records_cur
        tuples = int(np.mean([r.processed + r.emitted for r in records_cur]))
    assert baseline.accounting()["balanced"]
    assert current.accounting()["balanced"]
    return min(t_base), min(t_cur), tuples


def test_report_tick_speed():
    rows = []
    entries = []
    for n, circuits, joins in SCALES:
        t_before, t_after, tuples = tick_speed_timings(n, circuits, joins)
        rows.append(
            [
                f"tick ({circuits} circuits, ~{tuples} tuples)",
                n,
                t_before * 1e3,
                t_after * 1e3,
                t_before / t_after,
            ]
        )
        entries.append(
            {
                "op": "tick",
                "n": n,
                "circuits": circuits,
                "tuples_per_tick": tuples,
                "before_s": t_before,
                "after_s": t_after,
                "speedup": t_before / t_after,
            }
        )
    report(
        "E24",
        "Absolute tick speed: epoch-ring + high-water vs PR 9 two-level baseline"
        + (" [quick]" if QUICK else ""),
        ["kernel", "n", "baseline ms", "current ms", "speedup"],
        rows,
    )
    write_bench_json("E24", entries, quick=QUICK)
    if not QUICK:
        gate = next(e for e in entries if e["n"] == 1000)
        assert gate["speedup"] >= TICK_SPEEDUP_FLOOR, (
            f"epoch-ring + high-water tick only {gate['speedup']:.2f}x vs the "
            f"two-level/frozen baseline (floor {TICK_SPEEDUP_FLOOR}x)"
        )
