"""E5 — virtual-placement quality: relaxation vs alternatives.

The paper (§3.2) claims relaxation placement "minimizes the costs and
approximates optimal placement locations ... with respect to global
network utilization".  This experiment places single-join circuits on
random geometric populations with four strategies and compares the true
network usage (Σ rate × latency) against the exhaustive optimum
(feasible only for single-service circuits):

  relaxation   spring equilibrium in the cost space, then mapping
  gradient     Weiszfeld descent on Σ rate·dist, then mapping
  centroid     unweighted centroid, then mapping
  random       uniform random host

Reported as mean cost ratio to the exhaustive optimum (1.0 = optimal).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from _harness import report
from repro.core.circuit import Circuit
from repro.core.costs import GroundTruthEvaluator, network_usage
from repro.core.optimizer import IntegratedOptimizer, pinned_vector_positions
from repro.core.physical_mapping import ExhaustiveMapper, map_circuit
from repro.core.virtual_placement import (
    centroid_placement,
    gradient_descent_placement,
    relaxation_placement,
)
from repro.network.latency import LatencyMatrix
from repro.network.topology import random_geometric_topology
from repro.network.vivaldi import embed_latency_matrix
from repro.sbon.overlay import Overlay
from repro.query.generator import enumerate_all_plans
from repro.workloads.queries import WorkloadParams, random_query

NUM_NODES = 120
INSTANCES = 30


@lru_cache(maxsize=1)
def population():
    topo = random_geometric_topology(NUM_NODES, radius=0.22, seed=7)
    return Overlay.build(topo, vector_dims=2, embedding_rounds=40, seed=7)


def _optimal_single_service_cost(circuit: Circuit, latencies: LatencyMatrix) -> float:
    """Exhaustive optimum for a circuit with exactly one unpinned service."""
    (sid,) = circuit.unpinned_ids()
    best = float("inf")
    for node in range(latencies.num_nodes):
        circuit.assign(sid, node)
        best = min(best, network_usage(circuit, latencies.latency))
    return best


@lru_cache(maxsize=1)
def quality_results():
    overlay = population()
    latencies = overlay.latencies
    space = overlay.cost_space
    mapper = ExhaustiveMapper(space)
    rng = np.random.default_rng(3)
    ratios = {"relaxation": [], "gradient": [], "centroid": [], "random": []}
    algorithms = {
        "relaxation": relaxation_placement,
        "gradient": gradient_descent_placement,
        "centroid": centroid_placement,
    }
    params = WorkloadParams(num_producers=2)
    for seed in range(INSTANCES):
        query, stats = random_query(overlay.num_nodes, params, seed=seed)
        plan = enumerate_all_plans(query.producer_names)[0]
        circuit = Circuit.from_plan(plan, query, stats)
        optimal = _optimal_single_service_cost(circuit.copy(), latencies)
        if optimal <= 0:
            continue
        pinned = pinned_vector_positions(circuit, space)
        for name, algorithm in algorithms.items():
            placed = circuit.copy()
            vp = algorithm(placed, pinned)
            map_circuit(placed, vp, space, mapper)
            ratios[name].append(network_usage(placed, latencies.latency) / optimal)
        random_circuit = circuit.copy()
        (sid,) = random_circuit.unpinned_ids()
        random_circuit.assign(sid, int(rng.integers(overlay.num_nodes)))
        ratios["random"].append(
            network_usage(random_circuit, latencies.latency) / optimal
        )
    return ratios


def test_report_placement_quality(benchmark):
    overlay = population()
    query, stats = random_query(overlay.num_nodes, WorkloadParams(num_producers=2), seed=0)
    plan = enumerate_all_plans(query.producer_names)[0]
    circuit = Circuit.from_plan(plan, query, stats)
    pinned = pinned_vector_positions(circuit, overlay.cost_space)
    benchmark(relaxation_placement, circuit, pinned)

    ratios = quality_results()
    rows = [
        [
            name,
            float(np.mean(vals)),
            float(np.median(vals)),
            float(np.percentile(vals, 95)),
        ]
        for name, vals in ratios.items()
    ]
    report(
        "E5",
        f"Placement quality vs exhaustive optimum "
        f"({INSTANCES} single-join circuits, {NUM_NODES}-node geometric)",
        ["algorithm", "mean cost ratio", "median", "p95"],
        rows,
    )
    means = {name: float(np.mean(vals)) for name, vals in ratios.items()}
    assert means["relaxation"] < 1.35          # near-optimal
    assert means["relaxation"] < means["random"] / 2  # far below random
    assert means["gradient"] <= means["centroid"] + 0.2


def test_gradient_descent_speed(benchmark):
    overlay = population()
    query, stats = random_query(overlay.num_nodes, WorkloadParams(num_producers=3), seed=1)
    plan = enumerate_all_plans(query.producer_names)[0]
    circuit = Circuit.from_plan(plan, query, stats)
    pinned = pinned_vector_positions(circuit, overlay.cost_space)
    benchmark(gradient_descent_placement, circuit, pinned)


def test_full_optimize_five_producers_speed(benchmark):
    overlay = population()
    query, stats = random_query(overlay.num_nodes, WorkloadParams(num_producers=5), seed=2)
    optimizer = overlay.integrated_optimizer()
    benchmark(optimizer.optimize, query, stats)
