"""Shared benchmark-report harness.

Every experiment benchmark computes its paper-shaped table once (module
cache), registers it here, and the ``benchmarks/conftest.py`` terminal
hook prints all registered tables at the end of the run — so
``pytest benchmarks/ --benchmark-only`` emits both pytest-benchmark
timings and the experiment tables the paper reports.

Tables are also persisted under ``benchmarks/results/`` so that
EXPERIMENTS.md can quote them verbatim.  Before/after kernel timings
additionally go to machine-readable ``BENCH_<experiment>.json`` files
(:func:`write_bench_json`) so the perf trajectory is tracked across
PRs and CI uploads it as an artifact.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"


def env_metadata() -> dict:
    """Environment stamp for benchmark artifacts.

    Timings are only comparable within an environment; this records
    enough to tell apples from oranges across CI runs and machines.
    ``check_regression.py`` compares only the ``results`` key, so extra
    metadata never perturbs baselines.
    """
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "implementation": sys.implementation.name,
    }


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def report(exp_id: str, title: str, headers: list[str], rows: list[list]) -> str:
    """Format, persist, and return an experiment table."""
    text = format_table(f"{exp_id}: {title}", headers, rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def write_bench_json(exp_id: str, entries: list[dict], quick: bool = False) -> Path:
    """Persist machine-readable before/after kernel timings.

    Args:
        exp_id: experiment id, e.g. ``"E17"``.
        entries: one dict per measured kernel with keys ``op``, ``n``,
            ``before_s``, ``after_s``, ``speedup``.
        quick: True when run in CI smoke mode (smaller sizes).

    Returns:
        The path of the written ``BENCH_<exp_id>.json``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{exp_id}.json"
    payload = {
        "experiment": exp_id,
        "quick": quick,
        "env": env_metadata(),
        "results": entries,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
