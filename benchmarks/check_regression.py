#!/usr/bin/env python
"""Guard the perf trajectory: fresh BENCH_*.json vs committed baselines.

Every perf-tracked experiment persists machine-readable kernel timings
to ``benchmarks/results/BENCH_<exp>.json`` (see ``_harness.write_bench_json``).
This script compares the fresh files on disk against the versions
committed at ``HEAD``, matching entries on ``(op, n)``:

* absolute ``after_s`` more than 2x the committed baseline -> **fail**
  (exit 1);
* between 1.1x and 2x -> **warn** (a real-looking slowdown, still within
  the failure tolerance);
* at or below the 1.1x noise floor -> **ok**, printed with the measured
  ratio so the absolute ``after_s`` trend stays visible run over run
  (shared CI runners routinely jitter single-digit percents; flagging
  those as warnings only trains people to ignore the output);
* entries without a committed counterpart at the same size -> skipped
  (quick-mode CI runs use smaller sizes than the committed full-mode
  baselines, so cross-size pairs are never compared).

The summary line reports the aggregate after_s drift across all
compared entries, so a broad sub-noise slowdown is still surfaced even
when no single entry crosses the warn bar.

Run after a benchmark pass, e.g.::

    BENCH_QUICK=1 PYTHONPATH=src python -m pytest benchmarks/ -q
    python benchmarks/check_regression.py
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"
FAIL_RATIO = 2.0
# Below this ratio a slowdown is indistinguishable from shared-runner
# jitter; report the trend instead of warning.
NOISE_RATIO = 1.1


def committed_baseline(path: Path) -> dict | None:
    """The HEAD version of a results file, or None if not committed."""
    rel = path.relative_to(REPO_ROOT).as_posix()
    proc = subprocess.run(
        ["git", "show", f"HEAD:{rel}"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def main() -> int:
    fresh_files = sorted(RESULTS_DIR.glob("BENCH_*.json"))
    if not fresh_files:
        print("check_regression: no BENCH_*.json files on disk; nothing to do")
        return 0

    failures: list[str] = []
    warnings: list[str] = []
    compared = skipped = 0
    total_after = total_base = 0.0

    for path in fresh_files:
        fresh = json.loads(path.read_text())
        base = committed_baseline(path)
        if base is None:
            print(f"  {path.name}: no committed baseline (new experiment), skipped")
            continue
        by_key = {
            (e.get("op"), e.get("n")): e for e in base.get("results", [])
        }
        for entry in fresh.get("results", []):
            key = (entry.get("op"), entry.get("n"))
            ref = by_key.get(key)
            if ref is None or not ref.get("after_s") or not entry.get("after_s"):
                skipped += 1
                continue
            compared += 1
            ratio = entry["after_s"] / ref["after_s"]
            total_after += entry["after_s"]
            total_base += ref["after_s"]
            line = (
                f"{path.name} {key[0]} (n={key[1]}): "
                f"after_s {entry['after_s']:.6f}s vs baseline "
                f"{ref['after_s']:.6f}s ({ratio:.2f}x)"
            )
            if ratio > FAIL_RATIO:
                failures.append(line)
            elif ratio > NOISE_RATIO:
                warnings.append(line)
            else:
                print(f"  ok    {line}")

    for line in warnings:
        print(f"  WARN  {line}")
    for line in failures:
        print(f"  FAIL  {line}")
    if compared and total_base > 0:
        drift = total_after / total_base
        print(
            f"check_regression: aggregate after_s {total_after:.6f}s vs "
            f"baseline {total_base:.6f}s ({drift:.3f}x across "
            f"{compared} entries)"
        )
    print(
        f"check_regression: {compared} compared, {skipped} skipped, "
        f"{len(warnings)} warnings (> {NOISE_RATIO}x), "
        f"{len(failures)} failures (> {FAIL_RATIO}x)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
