"""E14 — cost-model validation by execution.

The whole cost-space architecture rests on the planner's rate estimates
being *true of the running system*: circuit links are priced at
``estimated rate × latency``.  This experiment executes optimized
circuits on actual synthetic streams (Poisson sources, windowed
symmetric-hash joins, latency-delayed delivery) and compares:

  (a) per-link measured vs estimated rates,
  (b) measured vs estimated total network usage,
  (c) whether the *ranking* the optimizer produced (integrated beats
      two-step) survives execution — the end-to-end sanity check.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from _harness import report
from repro.core.costs import GroundTruthEvaluator
from repro.core.optimizer import IntegratedOptimizer, TwoStepOptimizer
from repro.engine.executor import CircuitExecutor
from repro.workloads.scenarios import figure1_scenario

TICKS = 2500


def _validation_stats(sc):
    """Figure 1 statistics with selectivities scaled x5.

    The relative ordering (cross-cluster pairs more selective) is
    preserved, so the two-step bait still works — but every link of the
    4-way plan now carries enough tuples for a statistically meaningful
    rate comparison (the raw Figure 1 sels put the final join output at
    ~1e-4 tuples/tick, i.e. pure Poisson noise over any finite run).
    """
    from repro.query.selectivity import Statistics

    return Statistics(
        dict(sc.stats.rates),
        {pair: min(1.0, 5 * sel) for pair, sel in sc.stats.selectivities.items()},
        sc.stats.default_selectivity,
    )


@lru_cache(maxsize=1)
def validation_results():
    sc = figure1_scenario()
    stats = _validation_stats(sc)
    gt = GroundTruthEvaluator(sc.latencies)
    ratios = []
    usage_rows = []
    for name, optimizer in (
        ("integrated", IntegratedOptimizer(sc.cost_space)),
        ("two-step", TwoStepOptimizer(sc.cost_space)),
    ):
        result = optimizer.optimize(sc.query, stats)
        executor = CircuitExecutor.from_query(
            result.circuit, sc.query, stats, sc.latencies, window=20, seed=14
        )
        rep = executor.run(TICKS)
        for (src, dst), (measured, predicted) in rep.rate_agreement(
            result.circuit
        ).items():
            if predicted > 0:
                ratios.append(measured / predicted)
        estimated = gt.evaluate(result.circuit).network_usage
        usage_rows.append(
            [
                name,
                estimated,
                rep.measured_network_usage(),
                rep.measured_network_usage() / max(estimated, 1e-9),
                rep.delivered,
                rep.mean_delivery_latency_ms(),
            ]
        )
    return ratios, usage_rows


def test_report_engine_validation(benchmark):
    sc = figure1_scenario()
    result = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
    executor = CircuitExecutor.from_query(
        result.circuit, sc.query, sc.stats, sc.latencies, window=20, seed=14
    )
    benchmark(executor.run, 200)

    ratios, usage_rows = validation_results()
    report(
        "E14a",
        f"Executed vs estimated link rates (Figure 1 circuits, {TICKS} ticks)",
        ["quantity", "value"],
        [
            ["links compared", len(ratios)],
            ["mean measured/estimated rate", float(np.mean(ratios))],
            ["median", float(np.median(ratios))],
            ["worst link", float(max(abs(1 - r) for r in ratios))],
        ],
    )
    report(
        "E14b",
        "Executed vs estimated network usage (per optimizer)",
        ["optimizer", "estimated usage", "measured usage", "ratio",
         "tuples delivered", "mean data latency (ms)"],
        usage_rows,
    )
    # Rates realize the model within ~15% per link on average.
    assert abs(np.mean(ratios) - 1.0) < 0.15
    # The optimizer's ranking survives execution: the integrated circuit
    # moves less actual data-ms than the two-step circuit.
    measured = {row[0]: row[2] for row in usage_rows}
    assert measured["integrated"] < measured["two-step"]


def test_join_throughput(benchmark):
    from repro.engine.operators import SymmetricHashJoin
    from repro.engine.tuples import StreamTuple

    join = SymmetricHashJoin(window=50)
    counter = iter(range(100_000_000))

    def pump():
        i = next(counter)
        join.process(
            i % 2,
            StreamTuple(ts=i // 2, key=i % 97, lineage=frozenset((f"s{i % 2}", ))),
            now=i // 2,
        )

    benchmark(pump)
