"""E11-E13 — ablations of the paper's secondary mechanisms.

E11  Pre-computed plans (§2.3, Graefe & Ward) vs integrated vs two-step
     as network conditions drift away from compile time.  The paper's
     criticism: "the optimizer must guess which future node and network
     states are relevant" — measurable as a widening gap to the
     integrated optimizer under drift.

E12  Decentralized reuse discovery (§3.4's Hilbert-DHT implementation)
     vs the in-process registry: do both find the same reuse, and what
     does the DHT path cost in lookups/hops?

E13  Local plan rewriting (§3.3): recomposition of colocated joins —
     how often does the integrated optimizer colocate adjacent joins,
     and what do rewrites save in migration units and cost?
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

import numpy as np

from _harness import report
from repro.core.costs import GroundTruthEvaluator
from repro.core.multi_query import MultiQueryOptimizer
from repro.core.optimizer import IntegratedOptimizer, TwoStepOptimizer
from repro.core.precomputed import PrecomputedPlansOptimizer, perturbed_cost_space
from repro.core.reoptimizer import Reoptimizer
from repro.dht.directory import ServiceDirectory
from repro.dht.hilbert import HilbertMapper
from repro.network.topology import TransitStubParams, transit_stub_topology
from repro.sbon.overlay import Overlay
from repro.workloads.queries import WorkloadParams, random_query

TOPOLOGY = TransitStubParams(
    num_transit_domains=3,
    transit_nodes_per_domain=3,
    stub_domains_per_transit_node=2,
    nodes_per_stub_domain=5,
)  # 99 nodes


@lru_cache(maxsize=1)
def base_overlay() -> Overlay:
    topo = transit_stub_topology(TOPOLOGY, seed=12)
    return Overlay.build(topo, vector_dims=2, embedding_rounds=40, seed=12)


# ---------------------------------------------------------------------------
# E11 — precomputed plans under drift
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1)
def drift_results():
    overlay = base_overlay()
    params = WorkloadParams(num_producers=4, clustered=True, cluster_span=30)
    instances = [random_query(overlay.num_nodes, params, seed=s) for s in range(10)]

    rows = []
    for drift in (0.0, 0.05, 0.15, 0.3):
        ratios_pre, ratios_two = [], []
        for seed, (query, stats) in enumerate(instances):
            drifted = perturbed_cost_space(
                overlay.cost_space, vector_sigma=drift, load_sigma=0.15,
                seed=1000 + seed,
            )
            integrated = IntegratedOptimizer(drifted).optimize(query, stats)
            pre = PrecomputedPlansOptimizer(
                overlay.cost_space,  # compile-time view: pre-drift
                num_assumptions=4,
                vector_sigma=0.02,
                seed=seed,
            )
            pre.compile(query, stats)
            # Run-time: place book plans under the drifted space.
            pre.cost_space = drifted
            pre.mapper = IntegratedOptimizer(drifted).mapper
            pre.evaluator = IntegratedOptimizer(drifted).evaluator
            stale = pre.optimize(query, stats)
            two = TwoStepOptimizer(drifted).optimize(query, stats)
            base = max(integrated.cost.total, 1e-9)
            ratios_pre.append(stale.cost.total / base)
            ratios_two.append(two.cost.total / base)
        rows.append(
            [f"{drift:.2f}", float(np.mean(ratios_pre)), float(np.mean(ratios_two))]
        )
    return rows


# ---------------------------------------------------------------------------
# E12 — decentralized directory vs registry
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1)
def directory_results():
    overlay = base_overlay()
    integ = overlay.integrated_optimizer()
    params = WorkloadParams(num_producers=3, clustered=True, cluster_span=25)
    deployments = []
    for i in range(10):
        query, stats = random_query(overlay.num_nodes, params, name=f"d{i}", seed=i)
        deployments.append((query, stats, integ.optimize(query, stats)))

    span = float(
        np.linalg.norm(
            overlay.cost_space.vector_matrix().max(axis=0)
            - overlay.cost_space.vector_matrix().min(axis=0)
        )
    )
    radius = 0.15 * span

    lows, highs = overlay.cost_space.bounding_box()
    directory = ServiceDirectory(HilbertMapper(lows, highs, bits=8), ring_size=48)
    mq_registry = MultiQueryOptimizer(overlay.cost_space, radius=radius)
    mq_directory = MultiQueryOptimizer(
        overlay.cost_space, radius=radius, directory=directory
    )
    for _, _, result in deployments:
        mq_registry.deploy(result)
        mq_directory.deploy(result)

    agreement = 0
    total = 0
    stats_rows = {"registry": [0, 0.0], "directory": [0, 0.0]}
    for j in range(8):
        base_query, base_stats, _ = deployments[j % len(deployments)]
        consumer = dataclasses.replace(
            base_query.consumer, name=f"n{j}.C",
            node=(base_query.consumer.node + 13) % overlay.num_nodes,
        )
        new_query = dataclasses.replace(base_query, name=f"n{j}", consumer=consumer)
        out_reg = mq_registry.optimize(new_query, base_stats)
        out_dir = mq_directory.optimize(new_query, base_stats)
        total += 1
        if out_reg.reuse_happened == out_dir.reuse_happened and (
            not out_reg.reuse_happened
            or out_reg.reused[0].node == out_dir.reused[0].node
        ):
            agreement += 1
        for name, out in (("registry", out_reg), ("directory", out_dir)):
            stats_rows[name][0] += 1 if out.reuse_happened else 0
            stats_rows[name][1] += out.savings / max(
                out.standalone.cost.total, 1e-9
            )
    rows = [
        [
            name,
            f"{reused}/{total}",
            float(100 * savings / total),
            directory.lookups if name == "directory" else 0,
            (directory.lookup_hops / max(directory.lookups, 1))
            if name == "directory"
            else 0.0,
        ]
        for name, (reused, savings) in stats_rows.items()
    ]
    return rows, agreement, total


# ---------------------------------------------------------------------------
# E13 — local rewriting ablation
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1)
def rewrite_results():
    overlay = base_overlay()
    reopt = overlay.reoptimizer()
    params = WorkloadParams(num_producers=4, clustered=True, cluster_span=20)
    colocated = 0
    merged_units = 0
    total_units_before = 0
    cost_deltas = []
    instances = 20
    for seed in range(instances):
        query, stats = random_query(overlay.num_nodes, params, seed=500 + seed)
        result = overlay.integrated_optimizer().optimize(query, stats)
        circuit = result.circuit
        total_units_before += len(circuit.unpinned_ids())
        before = reopt.evaluator.evaluate(circuit).total
        rewritten, applied = reopt.rewrite_step(circuit, stats)
        if applied:
            colocated += 1
            merged_units += len(circuit.unpinned_ids()) - len(
                rewritten.unpinned_ids()
            )
            after = reopt.evaluator.evaluate(rewritten).total
            cost_deltas.append((before - after) / max(before, 1e-9))
    return {
        "instances": instances,
        "with_rewrites": colocated,
        "units_before": total_units_before,
        "units_merged": merged_units,
        "mean_cost_delta_pct": float(100 * np.mean(cost_deltas)) if cost_deltas else 0.0,
    }


def test_report_e11_precomputed(benchmark):
    overlay = base_overlay()
    query, stats = random_query(
        overlay.num_nodes, WorkloadParams(num_producers=4), seed=0
    )
    pre = PrecomputedPlansOptimizer(overlay.cost_space, num_assumptions=4, seed=0)
    pre.compile(query, stats)
    benchmark(pre.optimize, query, stats)

    rows = drift_results()
    report(
        "E11",
        "Pre-computed plans vs integrated under drift "
        "(cost ratio to fresh integrated optimization; 10 queries)",
        ["drift (vector sigma/span)", "precomputed-plans ratio", "two-step ratio"],
        rows,
    )
    # Precomputed never beats fresh integration, and it beats two-step
    # at low drift (it at least anticipated *some* network variation).
    for row in rows:
        assert row[1] >= 1.0 - 1e-9
    assert rows[0][1] <= rows[0][2] + 1e-9


def test_report_e12_directory(benchmark):
    rows, agreement, total = directory_results()
    overlay = base_overlay()
    lows, highs = overlay.cost_space.bounding_box()
    directory = ServiceDirectory(HilbertMapper(lows, highs, bits=8), ring_size=48)
    from repro.dht.directory import ServiceAdvertisement

    counter = iter(range(10_000_000))

    def publish():
        i = next(counter)
        directory.publish(
            ServiceAdvertisement(
                f"c{i}", f"c{i}/j0", i % overlay.num_nodes,
                ("join", frozenset({"A"})),
                tuple(overlay.cost_space.coordinate(i % overlay.num_nodes).full_array()),
                1.0,
            )
        )

    benchmark(publish)

    rows = [row for row in rows]
    report(
        "E12",
        f"Reuse discovery: in-process registry vs Hilbert/Chord directory "
        f"(decision agreement {agreement}/{total})",
        ["backend", "reuse rate", "mean savings (%)", "DHT lookups", "hops/lookup"],
        rows,
    )
    assert agreement >= total - 1  # decentralized path matches ~always


def test_report_e13_rewriting(benchmark):
    res = rewrite_results()
    overlay = base_overlay()
    reopt = overlay.reoptimizer()
    query, stats = random_query(
        overlay.num_nodes,
        WorkloadParams(num_producers=4, clustered=True, cluster_span=20),
        seed=500,
    )
    circuit = overlay.integrated_optimizer().optimize(query, stats).circuit
    benchmark(reopt.rewrite_step, circuit, stats)

    report(
        "E13",
        "Local plan rewriting: recomposition of colocated joins "
        f"({res['instances']} optimized 4-way joins)",
        ["quantity", "value"],
        [
            ["circuits with applicable rewrites", res["with_rewrites"]],
            ["unpinned services before", res["units_before"]],
            ["services merged away", res["units_merged"]],
            ["mean estimated-cost change (%)", res["mean_cost_delta_pct"]],
        ],
    )
    # Rewrites never increase cost (enforced by rewrite_step).
    assert res["mean_cost_delta_pct"] >= -1e-9
