"""E22 — observability overhead: the watcher may not slow the watched.

PR 8 threads sampled tuple tracing, a labeled metrics registry, and a
phase profiler through the data plane, transport, and controller.  The
layer's contract is twofold, and this benchmark pins both halves on a
large chaos tick (churn + drift + backpressure + reliable transport +
closed-loop control):

1. **Neutrality** — the per-tick traffic records of a plane with no
   observability, a plane with a disabled :class:`Observability`
   attached, and a plane with 1% tracing + metrics + profiling all
   enabled are identical, tick for tick.  Watching changes nothing.
2. **Bounded cost** — the disabled layer costs at most ``OFF_CEILING``
   of the bare tick (one attribute check per tick), and the fully
   enabled layer at most ``ON_CEILING`` (vectorized sampling hashes,
   one flush per metric per tick, two clock reads per phase).

Timing is interleaved round-robin: within each of ``ROUNDS`` rounds
all three stacks run the same ``ROUND_TICKS`` ticks back to back (the
twins stay in lockstep, so a round's workload is identical across
stacks), the overhead ratio is computed per round, and the asserted
ratio is the **min across rounds** — the min-of-runs principle applied
to paired ratios: scheduler/cache noise only ever inflates a round's
ratio, so the least-noisy round bounds the structural overhead.  Set
``BENCH_QUICK=1`` for the small CI smoke sizes with looser ceilings —
ratios are noisier when the bare tick is short.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np

from _harness import report, write_bench_json
from repro.control import ControlConfig, Controller
from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.network.dynamics import ChurnProcess, LatencyDriftProcess
from repro.network.latency import LatencyMatrix
from repro.obs import Observability
from repro.query.operators import ServiceSpec
from repro.runtime.dataplane import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

NODES = 120 if QUICK else 1000
CIRCUITS = 20 if QUICK else 100
JOINS = 1
WARMUP_TICKS = 2 if QUICK else 5
ROUNDS = 3 if QUICK else 5
ROUND_TICKS = 5 if QUICK else 10
#: Disabled-but-attached observability may cost at most this multiple
#: of the bare tick.
OFF_CEILING = 1.25 if QUICK else 1.02
#: 1% tracing + metrics + profiler may cost at most this multiple.
ON_CEILING = 1.8 if QUICK else 1.15
TRACE_RATE = 0.01


def _make_overlay(n: int, num_circuits: int, seed: int = 0):
    """Planted join chains on a Euclidean substrate (E21 idiom).

    Returns the overlay plus the producer/sink nodes to protect from
    churn so sources keep emitting through the chaos.
    """
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 200.0, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(n)})
    overlay = Overlay(latencies, space)
    pinned: set[int] = set()
    for c in range(num_circuits):
        circuit = Circuit(name=f"c{c}")
        producers = rng.choice(n, size=JOINS + 1, replace=False)
        pinned |= {int(p) for p in producers}
        for a, node in enumerate(producers):
            circuit.add_service(
                Service(f"c{c}/p{a}", ServiceSpec.relay(), int(node), frozenset((f"P{a}",)))
            )
        prev = f"c{c}/p0"
        prev_rate = float(rng.uniform(4.0, 10.0))
        for j in range(JOINS):
            sid = f"c{c}/j{j}"
            circuit.add_service(
                Service(sid, ServiceSpec.join(), None, frozenset((f"P{j}", f"X{j}")))
            )
            other_rate = float(rng.uniform(4.0, 10.0))
            circuit.add_link(prev, sid, prev_rate)
            circuit.add_link(f"c{c}/p{j + 1}", sid, other_rate)
            circuit.assign(sid, int(rng.integers(n)))
            prev = sid
            prev_rate = float(rng.uniform(0.3, 0.8)) * min(prev_rate, other_rate)
        sink = f"c{c}/sink"
        sink_node = int(rng.integers(n))
        pinned.add(sink_node)
        circuit.add_service(
            Service(sink, ServiceSpec.relay(), sink_node, frozenset(("ALL",)))
        )
        circuit.add_link(prev, sink, prev_rate)
        overlay.install_circuit(circuit)
    return overlay, pinned


class _ChaosStack:
    """One chaos tick: churn + drift + data plane + controller.

    Three instances with identical seeds perform identical work; only
    the attached observability differs.
    """

    def __init__(self, obs: Observability | None, seed: int = 7) -> None:
        self.overlay, pinned = _make_overlay(NODES, CIRCUITS, seed=seed)
        self.plane = DataPlane(
            self.overlay,
            RuntimeConfig(seed=seed + 1, node_capacity=60.0, reliable=True),
        )
        self.obs = obs
        if obs is not None:
            self.plane.attach_obs(obs)
        self.controller = Controller(
            self.plane,
            ControlConfig(warmup=3, calibrate_interval=4, drop_threshold=0.2),
        )
        if obs is not None:
            self.controller.events = obs.events
        self.churn = ChurnProcess(
            NODES, fail_prob=0.02, recover_prob=0.3, protected=pinned, seed=seed + 2
        )
        self.drift = LatencyDriftProcess(
            self.overlay.latencies, drift_sigma=0.02, seed=seed + 3
        )

    def tick(self):
        self.churn.step()
        self.overlay.apply_liveness(self.churn.alive_mask())
        self.overlay.latencies = self.drift.step()
        traffic = self.plane.step()
        self.controller.step(traffic)
        return traffic


@lru_cache(maxsize=1)
def overhead_timings():
    """(bare_s, off_ratio, on_ratio): bare tick cost and the min
    per-round paired overhead ratios of the attached-disabled and the
    fully enabled stacks.

    Neutrality is asserted on every tick the benchmark runs: the three
    stacks' traffic records must be equal, warmup and timed alike.
    """
    bare = _ChaosStack(obs=None)
    off = _ChaosStack(obs=Observability())  # constructed, all disabled
    on_obs = Observability(
        tracing=True, trace_rate=TRACE_RATE, metrics=True, profiling=True
    )
    on = _ChaosStack(obs=on_obs)

    def run(stack, n):
        t0 = time.perf_counter()
        records = [stack.tick() for _ in range(n)]
        return time.perf_counter() - t0, records

    _, rb = run(bare, WARMUP_TICKS)
    _, ro = run(off, WARMUP_TICKS)
    _, rn = run(on, WARMUP_TICKS)
    assert rb == ro == rn, "warmup records diverged"

    rounds = np.empty((ROUNDS, 3))
    for r in range(ROUNDS):
        for i, stack in enumerate((bare, off, on)):
            elapsed, recs = run(stack, ROUND_TICKS)
            rounds[r, i] = elapsed / ROUND_TICKS
            if i == 0:
                base_recs = recs
            else:
                assert recs == base_recs, "obs perturbed the traffic records"

    assert bare.plane.accounting()["balanced"]
    assert on_obs.tracer.num_events > 0, "1% sampling traced nothing"
    res = on.plane.trace_completeness()
    assert res["ok"], res["violations"]
    bare_s = float(rounds[:, 0].min())
    off_ratio = float((rounds[:, 1] / rounds[:, 0]).min())
    on_ratio = float((rounds[:, 2] / rounds[:, 0]).min())
    return bare_s, off_ratio, on_ratio


def test_disabled_obs_is_free():
    _, off_ratio, _ = overhead_timings()
    assert off_ratio <= OFF_CEILING, (
        f"disabled obs costs {off_ratio:.3f}x the bare tick "
        f"(ceiling {OFF_CEILING}x)"
    )


def test_enabled_obs_is_bounded():
    _, _, on_ratio = overhead_timings()
    assert on_ratio <= ON_CEILING, (
        f"tracing+metrics+profiler cost {on_ratio:.3f}x the bare tick "
        f"(ceiling {ON_CEILING}x)"
    )


def test_report_obs():
    bare_s, off_ratio, on_ratio = overhead_timings()
    off_s, on_s = bare_s * off_ratio, bare_s * on_ratio
    rows = [
        ["chaos tick, no obs", NODES, bare_s * 1e3, bare_s * 1e3, 1.0],
        ["chaos tick, obs attached+disabled", NODES, bare_s * 1e3, off_s * 1e3,
         1.0 / off_ratio],
        [f"chaos tick, {TRACE_RATE:.0%} trace+metrics+profile", NODES,
         bare_s * 1e3, on_s * 1e3, 1.0 / on_ratio],
    ]
    report(
        "E22",
        f"Observability overhead on the {NODES}-node/{CIRCUITS}-circuit chaos tick"
        + (" [quick]" if QUICK else ""),
        ["configuration", "n", "bare (ms)", "with obs (ms)", "ratio"],
        rows,
    )
    write_bench_json(
        "E22",
        [
            {
                "op": "chaos_tick_obs_off",
                "n": NODES,
                "before_s": bare_s,
                "after_s": off_s,
                "speedup": bare_s / off_s,
            },
            {
                "op": "chaos_tick_obs_on",
                "n": NODES,
                "before_s": bare_s,
                "after_s": on_s,
                "speedup": bare_s / on_s,
            },
        ],
        quick=QUICK,
    )
