"""E8 — optimizer work at scale; E17 — vectorized simulation engine.

§2.2: network scale "is the nail in the coffin for traditional service
placement techniques unless there is substantial guidance on where to
focus the search".  Experiment E8 quantifies the guidance:

  (a) optimizer work vs. overlay size — the integrated optimizer's
      placements-evaluated count is independent of node count (one
      virtual placement + mapping per candidate plan), whereas an
      enumeration-based placer grows as nodes^services;
  (b) optimizer work vs. query size — candidates are capped by the
      top-k DP instead of the (2n-3)!! full plan space;
  (c) multi-query work vs. deployed-population size — radius pruning
      examines a near-constant candidate set while the unpruned
      optimizer examines every deployed service.

Experiment E17 is the before/after evidence for the vectorized
simulation engine: one full ``Simulation`` tick (load + latency drift +
churn + cost-space refresh + re-optimization of every circuit + usage
recording) on a 1000-node / 200-circuit overlay, measured through
``step()`` (batched kernels) versus ``step_scalar()`` (the retained
per-node / per-pair / per-candidate reference loops consuming identical
RNG draws), plus batched versus scalar Hilbert key encoding.  Set
``BENCH_QUICK=1`` for the small CI smoke sizes.
"""

from __future__ import annotations

import dataclasses
import os
import time
from functools import lru_cache

import numpy as np
import pytest

from _harness import report, write_bench_json
from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.multi_query import MultiQueryOptimizer
from repro.dht.hilbert import hilbert_encode, hilbert_encode_batch
from repro.network.dynamics import ChurnProcess, LatencyDriftProcess, LoadProcess
from repro.network.latency import LatencyMatrix
from repro.network.topology import random_geometric_topology
from repro.query.generator import count_all_plans
from repro.query.operators import ServiceSpec
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.queries import WorkloadParams, random_query

NODE_COUNTS = [50, 100, 200, 400]
PRODUCER_COUNTS = [2, 3, 4, 6, 8]
POPULATION_SIZES = [4, 8, 16, 32]

QUICK = os.environ.get("BENCH_QUICK", "") == "1"
#: E17 sizes: (nodes, circuits, joins per circuit, hilbert keys).
SIM_NODES, SIM_CIRCUITS, SIM_JOINS = (150, 30, 4) if QUICK else (1000, 200, 6)
HILBERT_KEYS = 4000 if QUICK else 50000
#: Quick mode shrinks the Python-loop / kernel gap; assert less there.
SIM_SPEEDUP_FLOOR = 2.0 if QUICK else 10.0
HILBERT_SPEEDUP_FLOOR = 10.0


@lru_cache(maxsize=None)
def overlay_of_size(n: int) -> Overlay:
    topo = random_geometric_topology(n, radius=max(0.12, 2.2 / np.sqrt(n)), seed=n)
    return Overlay.build(topo, vector_dims=2, embedding_rounds=30, seed=n)


@lru_cache(maxsize=1)
def node_scaling():
    rows = []
    for n in NODE_COUNTS:
        overlay = overlay_of_size(n)
        query, stats = random_query(n, WorkloadParams(num_producers=4), seed=n)
        optimizer = overlay.integrated_optimizer()
        start = time.perf_counter()
        result = optimizer.optimize(query, stats)
        elapsed = time.perf_counter() - start
        exhaustive_configs = n ** 3  # 3 unpinned joins for 4 producers
        rows.append(
            [n, result.placements_evaluated, f"{elapsed * 1000:.0f}",
             f"{exhaustive_configs:.1e}"]
        )
    return rows


@lru_cache(maxsize=1)
def producer_scaling():
    overlay = overlay_of_size(100)
    rows = []
    for k in PRODUCER_COUNTS:
        query, stats = random_query(100, WorkloadParams(num_producers=k), seed=k)
        optimizer = overlay.integrated_optimizer(max_candidate_plans=16)
        start = time.perf_counter()
        result = optimizer.optimize(query, stats)
        elapsed = time.perf_counter() - start
        full = count_all_plans(k)
        rows.append(
            [k, full, result.placements_evaluated, f"{elapsed * 1000:.0f}"]
        )
    return rows


@lru_cache(maxsize=1)
def population_scaling():
    overlay = overlay_of_size(200)
    span = float(
        np.linalg.norm(
            overlay.cost_space.vector_matrix().max(axis=0)
            - overlay.cost_space.vector_matrix().min(axis=0)
        )
    )
    integ = overlay.integrated_optimizer()
    params = WorkloadParams(num_producers=3, clustered=True, cluster_span=30)
    rows = []
    for population in POPULATION_SIZES:
        deployments = []
        for i in range(population):
            query, stats = random_query(200, params, name=f"d{i}", seed=i)
            deployments.append((query, stats, integ.optimize(query, stats)))

        def examined_with(radius):
            mq = MultiQueryOptimizer(overlay.cost_space, radius=radius)
            for _, _, result in deployments:
                mq.deploy(result)
            counts = []
            for j in range(4):
                base_query, base_stats, _ = deployments[j % population]
                consumer = dataclasses.replace(
                    base_query.consumer, name=f"n{j}.C",
                    node=(base_query.consumer.node + 11) % 200,
                )
                new_query = dataclasses.replace(
                    base_query, name=f"n{j}", consumer=consumer
                )
                counts.append(
                    mq.optimize(new_query, base_stats).candidates_examined
                )
            return float(np.mean(counts))

        pruned = examined_with(span * 0.1)
        unpruned = examined_with(float("inf"))
        rows.append([population, pruned, unpruned,
                     f"{100 * pruned / max(unpruned, 1e-9):.0f}%"])
    return rows


# -- E17: vectorized simulation engine ------------------------------------


def _synthetic_simulation(seed: int = 0) -> Simulation:
    """A 1000-node / 200-circuit simulation without optimizer warm-up.

    The substrate is a random plane (Euclidean latencies; a valid
    symmetric matrix), circuits are random join chains with random
    initial placements, so the re-optimizer has real migration work
    every tick.  Identical seeds build identical twins for the
    ``step`` / ``step_scalar`` comparison.
    """
    n, num_circuits, joins = SIM_NODES, SIM_CIRCUITS, SIM_JOINS
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 200.0, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(n)})
    overlay = Overlay(latencies, space)
    for c in range(num_circuits):
        circuit = Circuit(name=f"c{c}")
        producers = rng.choice(n, size=4, replace=False)
        for a, node in enumerate(producers):
            circuit.add_service(
                Service(f"c{c}/p{a}", ServiceSpec.relay(), int(node), frozenset((f"P{a}",)))
            )
        prev = f"c{c}/p0"
        for j in range(joins):
            sid = f"c{c}/j{j}"
            circuit.add_service(
                Service(sid, ServiceSpec.join(), None, frozenset((f"P{j % 4}", f"X{j}")))
            )
            circuit.add_link(prev, sid, float(rng.uniform(1.0, 10.0)))
            circuit.add_link(f"c{c}/p{(j % 3) + 1}", sid, float(rng.uniform(1.0, 10.0)))
            circuit.assign(sid, int(rng.integers(n)))
            prev = sid
        sink = f"c{c}/sink"
        circuit.add_service(
            Service(sink, ServiceSpec.relay(), int(rng.integers(n)), frozenset(("ALL",)))
        )
        circuit.add_link(prev, sink, float(rng.uniform(1.0, 10.0)))
        overlay.install_circuit(circuit)
    return Simulation(
        overlay,
        load_process=LoadProcess(n, sigma=0.05, seed=seed + 1),
        latency_drift=LatencyDriftProcess(latencies, drift_sigma=0.02, seed=seed + 2),
        churn=ChurnProcess(n, fail_prob=0.0002, recover_prob=0.1, seed=seed + 3),
        config=SimulationConfig(reopt_interval=1, migration_threshold=0.01),
    )


@lru_cache(maxsize=1)
def simulation_tick_timings() -> tuple[float, float]:
    """(scalar tick seconds, vectorized tick seconds) on twin sims.

    Both twins advance tick 1 through the vectorized path (warm-up:
    kernel/caches compile, RNG streams stay aligned), then tick 2 is
    timed — ``step_scalar`` on one twin, ``step`` on the other, so the
    measured work is identical by the equivalence property.
    """
    vectorized, scalar = _synthetic_simulation(), _synthetic_simulation()
    vectorized.step()
    scalar.step()
    start = time.perf_counter()
    vectorized.step()
    t_vector = time.perf_counter() - start
    start = time.perf_counter()
    scalar.step_scalar()
    t_scalar = time.perf_counter() - start
    return t_scalar, t_vector


@lru_cache(maxsize=1)
def hilbert_timings() -> tuple[float, float]:
    """(scalar, batched) seconds to encode ``HILBERT_KEYS`` 3-d keys."""
    rng = np.random.default_rng(11)
    bits = 10
    coords = rng.integers(0, 1 << bits, size=(HILBERT_KEYS, 3))
    start = time.perf_counter()
    reference = [hilbert_encode(tuple(int(c) for c in row), bits) for row in coords]
    t_scalar = time.perf_counter() - start
    start = time.perf_counter()
    batched = hilbert_encode_batch(coords, bits)
    t_batch = time.perf_counter() - start
    assert [int(k) for k in batched] == reference  # exact, not just fast
    return t_scalar, t_batch


def test_report_simulation_engine():
    sim_scalar, sim_vector = simulation_tick_timings()
    hil_scalar, hil_batch = hilbert_timings()
    rows = [
        [
            f"simulation tick ({SIM_CIRCUITS} circuits, reopt every tick)",
            SIM_NODES,
            sim_scalar * 1e3,
            sim_vector * 1e3,
            sim_scalar / sim_vector,
        ],
        [
            "hilbert_encode (3-d, 10-bit keys)",
            HILBERT_KEYS,
            hil_scalar * 1e3,
            hil_batch * 1e3,
            hil_scalar / hil_batch,
        ],
    ]
    report(
        "E17",
        "Vectorized simulation engine: scalar reference vs batched kernels"
        + (" [quick]" if QUICK else ""),
        ["kernel", "n", "scalar ms", "vectorized ms", "speedup"],
        rows,
    )
    write_bench_json(
        "E17",
        [
            {
                "op": "simulation_tick",
                "n": SIM_NODES,
                "circuits": SIM_CIRCUITS,
                "before_s": sim_scalar,
                "after_s": sim_vector,
                "speedup": sim_scalar / sim_vector,
            },
            {
                "op": "hilbert_encode_batch",
                "n": HILBERT_KEYS,
                "before_s": hil_scalar,
                "after_s": hil_batch,
                "speedup": hil_scalar / hil_batch,
            },
        ],
        quick=QUICK,
    )
    assert sim_scalar / sim_vector >= SIM_SPEEDUP_FLOOR
    assert hil_scalar / hil_batch >= HILBERT_SPEEDUP_FLOOR


def test_simulation_tick_matches_scalar_reference():
    """Twin sims stepped via step() / step_scalar() agree at 1e-9."""
    vectorized, scalar = _synthetic_simulation(seed=5), _synthetic_simulation(seed=5)
    for _ in range(2):
        rv = vectorized.step()
        rs = scalar.step_scalar()
        assert rv.migrations == rs.migrations
        assert rv.failures == rs.failures
        assert rv.network_usage == pytest.approx(rs.network_usage, rel=1e-9, abs=1e-9)
        assert rv.mean_load == pytest.approx(rs.mean_load, rel=1e-9, abs=1e-9)
    for name, circuit in vectorized.overlay.circuits.items():
        assert circuit.placement == scalar.overlay.circuits[name].placement


def test_report_scalability(benchmark):
    overlay = overlay_of_size(100)
    query, stats = random_query(100, WorkloadParams(num_producers=4), seed=1)
    optimizer = overlay.integrated_optimizer()
    benchmark(optimizer.optimize, query, stats)

    report(
        "E8a",
        "Optimizer work vs overlay size (4-producer query)",
        ["nodes", "placements evaluated", "time (ms)",
         "exhaustive configs (nodes^services)"],
        node_scaling(),
    )
    report(
        "E8b",
        "Optimizer work vs query size (100-node overlay, top-16 DP)",
        ["producers", "full plan space (2n-3)!!", "placements evaluated",
         "time (ms)"],
        producer_scaling(),
    )
    report(
        "E8c",
        "Multi-query candidates examined vs deployed population "
        "(radius = 10% of span vs unpruned)",
        ["deployed circuits", "pruned (mean)", "unpruned (mean)", "pruned/unpruned"],
        population_scaling(),
    )
    # Work independent of node count:
    evaluated = [row[1] for row in node_scaling()]
    assert len(set(evaluated)) == 1
    # Candidate cap holds:
    for row in producer_scaling():
        assert row[2] <= 16
    # Pruning examines a strict subset once the population is large:
    last = population_scaling()[-1]
    assert last[1] < last[2]
