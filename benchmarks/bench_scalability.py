"""E8 — optimizer work at scale.

§2.2: network scale "is the nail in the coffin for traditional service
placement techniques unless there is substantial guidance on where to
focus the search".  This experiment quantifies the guidance:

  (a) optimizer work vs. overlay size — the integrated optimizer's
      placements-evaluated count is independent of node count (one
      virtual placement + mapping per candidate plan), whereas an
      enumeration-based placer grows as nodes^services;
  (b) optimizer work vs. query size — candidates are capped by the
      top-k DP instead of the (2n-3)!! full plan space;
  (c) multi-query work vs. deployed-population size — radius pruning
      examines a near-constant candidate set while the unpruned
      optimizer examines every deployed service.
"""

from __future__ import annotations

import dataclasses
import time
from functools import lru_cache

import numpy as np

from _harness import report
from repro.core.multi_query import MultiQueryOptimizer
from repro.network.topology import random_geometric_topology
from repro.query.generator import count_all_plans
from repro.sbon.overlay import Overlay
from repro.workloads.queries import WorkloadParams, random_query

NODE_COUNTS = [50, 100, 200, 400]
PRODUCER_COUNTS = [2, 3, 4, 6, 8]
POPULATION_SIZES = [4, 8, 16, 32]


@lru_cache(maxsize=None)
def overlay_of_size(n: int) -> Overlay:
    topo = random_geometric_topology(n, radius=max(0.12, 2.2 / np.sqrt(n)), seed=n)
    return Overlay.build(topo, vector_dims=2, embedding_rounds=30, seed=n)


@lru_cache(maxsize=1)
def node_scaling():
    rows = []
    for n in NODE_COUNTS:
        overlay = overlay_of_size(n)
        query, stats = random_query(n, WorkloadParams(num_producers=4), seed=n)
        optimizer = overlay.integrated_optimizer()
        start = time.perf_counter()
        result = optimizer.optimize(query, stats)
        elapsed = time.perf_counter() - start
        exhaustive_configs = n ** 3  # 3 unpinned joins for 4 producers
        rows.append(
            [n, result.placements_evaluated, f"{elapsed * 1000:.0f}",
             f"{exhaustive_configs:.1e}"]
        )
    return rows


@lru_cache(maxsize=1)
def producer_scaling():
    overlay = overlay_of_size(100)
    rows = []
    for k in PRODUCER_COUNTS:
        query, stats = random_query(100, WorkloadParams(num_producers=k), seed=k)
        optimizer = overlay.integrated_optimizer(max_candidate_plans=16)
        start = time.perf_counter()
        result = optimizer.optimize(query, stats)
        elapsed = time.perf_counter() - start
        full = count_all_plans(k)
        rows.append(
            [k, full, result.placements_evaluated, f"{elapsed * 1000:.0f}"]
        )
    return rows


@lru_cache(maxsize=1)
def population_scaling():
    overlay = overlay_of_size(200)
    span = float(
        np.linalg.norm(
            overlay.cost_space.vector_matrix().max(axis=0)
            - overlay.cost_space.vector_matrix().min(axis=0)
        )
    )
    integ = overlay.integrated_optimizer()
    params = WorkloadParams(num_producers=3, clustered=True, cluster_span=30)
    rows = []
    for population in POPULATION_SIZES:
        deployments = []
        for i in range(population):
            query, stats = random_query(200, params, name=f"d{i}", seed=i)
            deployments.append((query, stats, integ.optimize(query, stats)))

        def examined_with(radius):
            mq = MultiQueryOptimizer(overlay.cost_space, radius=radius)
            for _, _, result in deployments:
                mq.deploy(result)
            counts = []
            for j in range(4):
                base_query, base_stats, _ = deployments[j % population]
                consumer = dataclasses.replace(
                    base_query.consumer, name=f"n{j}.C",
                    node=(base_query.consumer.node + 11) % 200,
                )
                new_query = dataclasses.replace(
                    base_query, name=f"n{j}", consumer=consumer
                )
                counts.append(
                    mq.optimize(new_query, base_stats).candidates_examined
                )
            return float(np.mean(counts))

        pruned = examined_with(span * 0.1)
        unpruned = examined_with(float("inf"))
        rows.append([population, pruned, unpruned,
                     f"{100 * pruned / max(unpruned, 1e-9):.0f}%"])
    return rows


def test_report_scalability(benchmark):
    overlay = overlay_of_size(100)
    query, stats = random_query(100, WorkloadParams(num_producers=4), seed=1)
    optimizer = overlay.integrated_optimizer()
    benchmark(optimizer.optimize, query, stats)

    report(
        "E8a",
        "Optimizer work vs overlay size (4-producer query)",
        ["nodes", "placements evaluated", "time (ms)",
         "exhaustive configs (nodes^services)"],
        node_scaling(),
    )
    report(
        "E8b",
        "Optimizer work vs query size (100-node overlay, top-16 DP)",
        ["producers", "full plan space (2n-3)!!", "placements evaluated",
         "time (ms)"],
        producer_scaling(),
    )
    report(
        "E8c",
        "Multi-query candidates examined vs deployed population "
        "(radius = 10% of span vs unpruned)",
        ["deployed circuits", "pruned (mean)", "unpruned (mean)", "pruned/unpruned"],
        population_scaling(),
    )
    # Work independent of node count:
    evaluated = [row[1] for row in node_scaling()]
    assert len(set(evaluated)) == 1
    # Candidate cap holds:
    for row in producer_scaling():
        assert row[2] <= 16
    # Pruning examines a strict subset once the population is large:
    last = population_scaling()[-1]
    assert last[1] < last[2]
