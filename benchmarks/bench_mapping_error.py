"""E6 — mapping error across topology families and dimensionality.

§3.2: "The magnitude of the mapping error depends on the dimensionality
of the cost space and the distribution of physical nodes within that
cost space.  However, experiments have shown that for realistic
topologies and latency cost spaces this error remains small."

Two sweeps over 150-node populations:
  (a) topology family (transit-stub, geometric, uniform-random) at 2-D;
  (b) embedding dimensionality (2-5) on the transit-stub family.

Error = distance from a random target coordinate to the nearest
published node, normalized by mean pairwise latency.  Both the
exhaustive mapper (distribution-of-nodes error only) and the catalog
mapper (plus Hilbert-locality error) are reported.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from _harness import report
from repro.core.coordinates import CostCoordinate
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.physical_mapping import CatalogMapper, ExhaustiveMapper, build_catalog
from repro.network.latency import LatencyMatrix
from repro.network.topology import (
    TransitStubParams,
    random_geometric_topology,
    transit_stub_topology,
    uniform_delay_topology,
)
from repro.network.vivaldi import embed_latency_matrix

N_NODES = 150
TARGETS = 150


def _make_topology(family: str):
    if family == "transit-stub":
        params = TransitStubParams(
            num_transit_domains=3,
            transit_nodes_per_domain=3,
            stub_domains_per_transit_node=3,
            nodes_per_stub_domain=5,
        )  # 9 + 9*3*5 = 144 nodes
        return transit_stub_topology(params, seed=1)
    if family == "geometric":
        return random_geometric_topology(N_NODES, radius=0.22, seed=1)
    if family == "uniform":
        return uniform_delay_topology(N_NODES, seed=1)
    raise ValueError(family)


def _errors(space: CostSpace, latencies: LatencyMatrix, use_catalog: bool, seed: int):
    if use_catalog:
        catalog = build_catalog(space, bits=8, ring_size=48)
        mapper = CatalogMapper(space, catalog, scan_width=8)
    else:
        mapper = ExhaustiveMapper(space)
    vectors = space.vector_matrix()
    lows, highs = vectors.min(axis=0), vectors.max(axis=0)
    rng = np.random.default_rng(seed)
    errors = []
    for _ in range(TARGETS):
        target = CostCoordinate(tuple(rng.uniform(lows, highs)))
        node, _ = mapper.map_coordinate(target)
        errors.append(target.distance_to(space.coordinate(node)))
    return np.array(errors) / latencies.mean_latency()


@lru_cache(maxsize=1)
def family_sweep():
    rows = []
    for family in ("transit-stub", "geometric", "uniform"):
        topo = _make_topology(family)
        latencies = LatencyMatrix.from_topology(topo)
        emb = embed_latency_matrix(latencies, dimensions=2, rounds=30,
                                   neighbors_per_round=4, seed=2)
        space = CostSpace.from_embedding(
            CostSpaceSpec.latency_only(vector_dims=2), emb.coordinates
        )
        ex = _errors(space, latencies, use_catalog=False, seed=5)
        cat = _errors(space, latencies, use_catalog=True, seed=5)
        rows.append(
            [family, topo.num_nodes, float(ex.mean()), float(cat.mean()),
             float(np.percentile(cat, 95))]
        )
    return rows


@lru_cache(maxsize=1)
def dimension_sweep():
    topo = _make_topology("transit-stub")
    latencies = LatencyMatrix.from_topology(topo)
    rows = []
    for dims in (2, 3, 4, 5):
        emb = embed_latency_matrix(latencies, dimensions=dims, rounds=30,
                                   neighbors_per_round=4, seed=3)
        space = CostSpace.from_embedding(
            CostSpaceSpec.latency_only(vector_dims=dims), emb.coordinates
        )
        ex = _errors(space, latencies, use_catalog=False, seed=7)
        cat = _errors(space, latencies, use_catalog=True, seed=7)
        rows.append([dims, float(ex.mean()), float(cat.mean()),
                     float(cat.mean() - ex.mean())])
    return rows


def test_report_mapping_error(benchmark):
    rows_family = family_sweep()
    rows_dims = dimension_sweep()

    topo = _make_topology("geometric")
    latencies = LatencyMatrix.from_topology(topo)
    emb = embed_latency_matrix(latencies, dimensions=2, rounds=10, seed=1)
    space = CostSpace.from_embedding(
        CostSpaceSpec.latency_only(vector_dims=2), emb.coordinates
    )
    catalog = build_catalog(space, bits=8, ring_size=48)
    mapper = CatalogMapper(space, catalog)
    target = CostCoordinate(tuple(space.vector_matrix().mean(axis=0)))
    benchmark(mapper.map_coordinate, target)

    report(
        "E6a",
        "Mapping error by topology family (error / mean latency, 2-D space)",
        ["family", "nodes", "exhaustive mean", "catalog mean", "catalog p95"],
        rows_family,
    )
    report(
        "E6b",
        "Mapping error vs cost-space dimensionality (transit-stub)",
        ["dims", "exhaustive mean", "catalog mean", "hilbert penalty"],
        rows_dims,
    )
    # Realistic (structured) topologies: error stays small.
    for family, _, ex_mean, cat_mean, _ in rows_family:
        if family != "uniform":
            assert ex_mean < 0.35
    # Catalog error >= exhaustive error (it is an approximation).
    for row in rows_dims:
        assert row[2] >= row[1] - 1e-9
