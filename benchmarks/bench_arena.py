"""E21 — the global circuit arena: fused dispatch and incremental churn.

PR 7 fuses every installed circuit's compiled arrays into one global
CSR arena shared by the data plane and the re-optimizer, so a tick runs
a constant number of array kernels regardless of how many circuits are
installed.  This benchmark pins the three performance claims:

1. **Sublinear dispatch** — the per-circuit cost of one traffic tick at
   ``HI_CIRCUITS`` circuits is at most 3x the per-circuit cost at
   ``LO_CIRCUITS`` circuits: per-tick Python dispatch no longer grows
   with the circuit count.
2. **Fused re-optimization** — one global placement pass
   (``Reoptimizer.step_all``) over all circuits beats the retained
   per-circuit kernel loop (``step_all_percircuit``) at scale, while
   producing bit-identical migrations.
3. **Incremental install/uninstall** — under the tenant-churn workload,
   syncing one departure + one arrival into the arena (append rows,
   tombstone the dead segment) is >=10x faster than the legacy
   full-recompile sync, while the two modes stay tick-for-tick
   equivalent and tuple conservation balances every tick.

Set ``BENCH_QUICK=1`` for the small CI smoke sizes (the Python-loop /
kernel gap shrinks with size, so quick mode asserts smaller floors).
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np

from _harness import report, write_bench_json
from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.reoptimizer import Reoptimizer
from repro.network.latency import LatencyMatrix
from repro.query.operators import ServiceSpec
from repro.runtime.dataplane import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay
from repro.workloads.scenarios import tenant_churn_scenario

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

#: Node count shared by the dispatch-scaling and fused-reopt stages.
ARENA_NODES = 120 if QUICK else 1000
#: Circuit counts for the sublinear-dispatch comparison.
LO_CIRCUITS, HI_CIRCUITS = (20, 100) if QUICK else (100, 1000)
JOINS = 1
WARMUP_TICKS = 3 if QUICK else 5
TIMED_TICKS = 3
#: Per-circuit tick cost at HI may be at most this multiple of LO's.
SUBLINEAR_CEILING = 3.0
REOPT_PASSES = 2 if QUICK else 3
REOPT_FLOOR = 1.1 if QUICK else 1.5
#: Tenant-churn stage: installed tenants and timed churn rounds.
CHURN_NODES, CHURN_CIRCUITS = (36, 40) if QUICK else (64, 250)
CHURN_ROUNDS = 4 if QUICK else 6
CHURN_FLOOR = 2.5 if QUICK else 10.0

#: TickRecord fields compared between twin planes.  ``recompiles`` is
#: excluded by design: it is the mode observable (0 on the incremental
#: path, >=1 per churn round on the legacy path).
RECORD_FIELDS = (
    "emitted",
    "delivered",
    "dropped",
    "shed",
    "redelivered",
    "buffered",
    "network_usage",
    "data_usage",
    "cpu_cost",
    "migrations",
    "failures",
    "circuits",
)


def _make_overlay(n: int, num_circuits: int, joins: int = JOINS, seed: int = 0) -> Overlay:
    """A planted overlay carrying ``num_circuits`` random join chains.

    Same construction as the E18 traffic overlay: Euclidean substrate
    latencies on a random plane, join chains with uniform source rates
    and decaying internal rates.  Identical seeds build identical twins.
    """
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 200.0, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(n)})
    overlay = Overlay(latencies, space)
    for c in range(num_circuits):
        circuit = Circuit(name=f"c{c}")
        producers = rng.choice(n, size=joins + 1, replace=False)
        for a, node in enumerate(producers):
            circuit.add_service(
                Service(f"c{c}/p{a}", ServiceSpec.relay(), int(node), frozenset((f"P{a}",)))
            )
        prev = f"c{c}/p0"
        prev_rate = float(rng.uniform(4.0, 10.0))
        for j in range(joins):
            sid = f"c{c}/j{j}"
            circuit.add_service(
                Service(sid, ServiceSpec.join(), None, frozenset((f"P{j}", f"X{j}")))
            )
            other_rate = float(rng.uniform(4.0, 10.0))
            circuit.add_link(prev, sid, prev_rate)
            circuit.add_link(f"c{c}/p{j + 1}", sid, other_rate)
            circuit.assign(sid, int(rng.integers(n)))
            prev = sid
            prev_rate = float(rng.uniform(0.3, 0.8)) * min(prev_rate, other_rate)
        sink = f"c{c}/sink"
        circuit.add_service(
            Service(sink, ServiceSpec.relay(), int(rng.integers(n)), frozenset(("ALL",)))
        )
        circuit.add_link(prev, sink, prev_rate)
        overlay.install_circuit(circuit)
    return overlay


@lru_cache(maxsize=1)
def tick_scaling_timings() -> dict[int, float]:
    """Mean traffic-tick seconds at LO_CIRCUITS and HI_CIRCUITS."""
    times: dict[int, float] = {}
    for count in (LO_CIRCUITS, HI_CIRCUITS):
        plane = DataPlane(_make_overlay(ARENA_NODES, count, seed=3), RuntimeConfig(seed=3))
        for _ in range(WARMUP_TICKS):
            plane.step()
        t0 = time.perf_counter()
        for _ in range(TIMED_TICKS):
            plane.step()
        times[count] = (time.perf_counter() - t0) / TIMED_TICKS
        assert plane.accounting()["balanced"]
    return times


@lru_cache(maxsize=1)
def reopt_timings() -> tuple[float, float]:
    """(per-circuit-loop seconds, fused seconds) per full placement pass.

    Twin overlays, twin re-optimizers; migrations are asserted
    identical pass for pass, so the timed work is equivalent by
    construction.
    """
    ov_fused = _make_overlay(ARENA_NODES, HI_CIRCUITS, seed=5)
    ov_loop = _make_overlay(ARENA_NODES, HI_CIRCUITS, seed=5)
    r_fused = Reoptimizer(
        ov_fused.cost_space,
        mapper=ov_fused.exhaustive_mapper(),
        migration_threshold=0.0,
        kernel_cache={},
    )
    r_loop = Reoptimizer(
        ov_loop.cost_space,
        mapper=ov_loop.exhaustive_mapper(),
        migration_threshold=0.0,
        kernel_cache={},
    )
    c_fused = list(ov_fused.circuits.values())
    c_loop = list(ov_loop.circuits.values())

    def _sigs(reports):
        return [
            [(m.service_id, m.from_node, m.to_node) for m in r.migrations]
            for r in reports
        ]

    # Warmup builds kernels + arena and checks equivalence once.
    assert _sigs(r_fused.step_all(c_fused)) == _sigs(r_loop.step_all_percircuit(c_loop))

    t_fused = t_loop = 0.0
    for _ in range(REOPT_PASSES):
        t0 = time.perf_counter()
        reports_f = r_fused.step_all(c_fused)
        t_fused += time.perf_counter() - t0
        t0 = time.perf_counter()
        reports_l = r_loop.step_all_percircuit(c_loop)
        t_loop += time.perf_counter() - t0
        assert _sigs(reports_f) == _sigs(reports_l)
    for name, circuit in ov_fused.circuits.items():
        assert circuit.placement == ov_loop.circuits[name].placement
    return t_loop / REOPT_PASSES, t_fused / REOPT_PASSES


@lru_cache(maxsize=1)
def churn_sync_timings() -> tuple[float, float]:
    """(full-recompile seconds, incremental seconds) per churn sync.

    Each churn round retires the oldest tenant and admits a new one on
    both twins, then times ``DataPlane._sync`` — the arena maintenance
    the tick would otherwise perform — on each.  Both twins then step,
    and their traffic records are asserted equal (minus the
    ``recompiles`` observable) with balanced accounting.
    """
    fast = tenant_churn_scenario(
        num_nodes=CHURN_NODES, initial_circuits=CHURN_CIRCUITS,
        incremental=True, seed=1,
    )
    slow = tenant_churn_scenario(
        num_nodes=CHURN_NODES, initial_circuits=CHURN_CIRCUITS,
        incremental=False, seed=1,
    )
    # Let traffic settle before churning so conservation sees deliveries.
    for _ in range(3):
        ra, rb = fast.simulation.step(), slow.simulation.step()
        assert all(getattr(ra, f) == getattr(rb, f) for f in RECORD_FIELDS)

    t_inc = t_full = 0.0
    for _ in range(CHURN_ROUNDS):
        fast.churn_tick()
        slow.churn_tick()
        t0 = time.perf_counter()
        fast.data_plane._sync()
        t_inc += time.perf_counter() - t0
        t0 = time.perf_counter()
        slow.data_plane._sync()
        t_full += time.perf_counter() - t0
        ra, rb = fast.simulation.step(), slow.simulation.step()
        assert all(getattr(ra, f) == getattr(rb, f) for f in RECORD_FIELDS), (ra, rb)
        assert fast.data_plane.accounting()["balanced"]
        assert slow.data_plane.accounting()["balanced"]
    assert fast.data_plane.recompiles == 0, "incremental path recompiled"
    assert slow.data_plane.recompiles >= CHURN_ROUNDS, "legacy path skipped recompiles"
    return t_full / CHURN_ROUNDS, t_inc / CHURN_ROUNDS


def test_tick_dispatch_is_sublinear():
    times = tick_scaling_timings()
    per_lo = times[LO_CIRCUITS] / LO_CIRCUITS
    per_hi = times[HI_CIRCUITS] / HI_CIRCUITS
    assert per_hi <= SUBLINEAR_CEILING * per_lo, (
        f"per-circuit tick cost grew {per_hi / per_lo:.2f}x "
        f"from {LO_CIRCUITS} to {HI_CIRCUITS} circuits"
    )


def test_fused_reopt_beats_percircuit():
    t_loop, t_fused = reopt_timings()
    assert t_loop / t_fused >= REOPT_FLOOR, (
        f"fused step_all only {t_loop / t_fused:.2f}x vs per-circuit loop"
    )


def test_incremental_churn_beats_full_recompile():
    t_full, t_inc = churn_sync_timings()
    assert t_full / t_inc >= CHURN_FLOOR, (
        f"incremental churn sync only {t_full / t_inc:.2f}x vs full recompile"
    )


def test_report_arena():
    times = tick_scaling_timings()
    t_loop, t_fused = reopt_timings()
    t_full, t_inc = churn_sync_timings()
    per_lo = times[LO_CIRCUITS] / LO_CIRCUITS
    per_hi = times[HI_CIRCUITS] / HI_CIRCUITS
    rows = [
        [
            f"traffic tick per circuit ({LO_CIRCUITS}->{HI_CIRCUITS} circuits)",
            ARENA_NODES,
            per_lo * 1e6,
            per_hi * 1e6,
            per_lo / per_hi,
        ],
        [
            f"reopt pass ({HI_CIRCUITS} circuits)",
            ARENA_NODES,
            t_loop * 1e3,
            t_fused * 1e3,
            t_loop / t_fused,
        ],
        [
            f"churn sync ({CHURN_CIRCUITS} tenants, 1 in / 1 out)",
            CHURN_NODES,
            t_full * 1e3,
            t_inc * 1e3,
            t_full / t_inc,
        ],
    ]
    report(
        "E21",
        "Global circuit arena: dispatch scaling, fused reopt, incremental churn"
        + (" [quick]" if QUICK else ""),
        ["kernel", "n", "before (us/ms)", "after (us/ms)", "speedup"],
        rows,
    )
    write_bench_json(
        "E21",
        [
            {
                "op": "tick_per_circuit",
                "n": HI_CIRCUITS,
                "before_s": per_lo,
                "after_s": per_hi,
                "speedup": per_lo / per_hi,
            },
            {
                "op": "reopt_pass",
                "n": HI_CIRCUITS,
                "before_s": t_loop,
                "after_s": t_fused,
                "speedup": t_loop / t_fused,
            },
            {
                "op": "churn_sync",
                "n": CHURN_CIRCUITS,
                "before_s": t_full,
                "after_s": t_inc,
                "speedup": t_full / t_inc,
            },
        ],
        quick=QUICK,
    )
